//! The worker-pool runtime.

use crate::shard::ShardedGraph;
use crate::task::{AccessMode, TaskSpec};
use crossbeam::channel::{unbounded, Receiver, Sender};
use nexus_trace::TaskId;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One in-flight task.
struct TaskState {
    id: TaskId,
    body: Mutex<Option<Box<dyn FnOnce() + Send + 'static>>>,
    accesses: Vec<(u64, AccessMode)>,
    /// Unresolved dependencies plus a submission guard; the task is dispatched
    /// when this reaches zero.
    pending: AtomicU32,
    /// Set once the task body has finished and its accesses were retired.
    done: AtomicBool,
}

enum WorkerMsg {
    Run(Arc<TaskState>),
    Stop,
}

/// Aggregate runtime statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Tasks submitted since creation.
    pub submitted: u64,
    /// Tasks fully executed and retired.
    pub executed: u64,
    /// Worker threads.
    pub workers: usize,
    /// Dependency shards (the "task graphs" of the software design).
    pub shards: usize,
    /// Largest number of tasks ever found waiting on a single resource key.
    pub max_waiters_on_a_key: usize,
    /// Keys whose most recent writer is still in flight (the `taskwait on`
    /// lookup table; retired writers are pruned, so this is bounded by the
    /// in-flight footprint, not by the runtime's lifetime).
    pub tracked_writers: usize,
}

/// Barrier state guarded by one mutex: the outstanding-task count plus the
/// set of task ids some thread is currently blocked on in `taskwait on`.
/// Keeping both under the same lock lets the retire path decide precisely
/// whether a wakeup can matter, instead of broadcasting on every completion.
#[derive(Default)]
struct WaitState {
    /// Submitted but not yet retired tasks.
    outstanding: u64,
    /// Waiter count per task id targeted by an active `taskwait_on`.
    waited: HashMap<TaskId, usize>,
    /// Threads blocked in a full `taskwait`.
    barrier_waiters: usize,
}

struct Inner {
    graph: ShardedGraph,
    ready_tx: Sender<WorkerMsg>,
    /// In-flight task registry (needed to resolve released task ids).
    registry: Mutex<HashMap<TaskId, Arc<TaskState>>>,
    /// Most recent writer of each key (for `taskwait on`). Entries are pruned
    /// when their task retires.
    last_writer: Mutex<HashMap<u64, Arc<TaskState>>>,
    /// Barrier bookkeeping for `taskwait` / `taskwait on`.
    wait: Mutex<WaitState>,
    completion: Condvar,
    next_id: AtomicU64,
    submitted: AtomicU64,
    executed: AtomicU64,
}

impl Inner {
    fn execute(&self, task: Arc<TaskState>) {
        // Run the body.
        let body = task
            .body
            .lock()
            .take()
            .expect("a task body can only be executed once");
        body();

        // Retire every access and kick off released tasks (the role of the
        // finished-task pipeline + arbiter decrements).
        for &(key, mode) in &task.accesses {
            for released in self.graph.retire(task.id, key, mode) {
                let state = {
                    let registry = self.registry.lock();
                    registry
                        .get(&released)
                        .cloned()
                        .expect("released task must be in flight")
                };
                if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    self.ready_tx
                        .send(WorkerMsg::Run(state))
                        .expect("worker channel closed while tasks in flight");
                }
            }
        }

        task.done.store(true, Ordering::Release);

        // Prune the task's entries from the `taskwait on` lookup table: a
        // retired writer can never be waited on again, and keeping the entry
        // would leak one `Arc<TaskState>` per written key for the lifetime of
        // the runtime.
        {
            let mut last_writer = self.last_writer.lock();
            for &(key, mode) in &task.accesses {
                if mode.writes() {
                    if let Some(current) = last_writer.get(&key) {
                        if Arc::ptr_eq(current, &task) {
                            last_writer.remove(&key);
                        }
                    }
                }
            }
        }

        self.registry.lock().remove(&task.id);
        self.executed.fetch_add(1, Ordering::Relaxed);

        let mut wait = self.wait.lock();
        wait.outstanding -= 1;
        // Wake sleepers only when their condition could have changed: the
        // barrier count reached zero, or this very task was being waited on.
        let wake_barrier = wait.outstanding == 0 && wait.barrier_waiters > 0;
        if wake_barrier || wait.waited.contains_key(&task.id) {
            self.completion.notify_all();
        }
    }
}

/// A task-parallel runtime with Nexus#-style sharded dependency resolution.
///
/// See the crate-level documentation for an example.
pub struct Runtime {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    ready_rx: Receiver<WorkerMsg>,
}

impl Runtime {
    /// Creates a runtime with `workers` worker threads and the default shard
    /// count (six, the configuration the paper selects).
    pub fn new(workers: usize) -> Result<Self, String> {
        Self::with_shards(workers, 6)
    }

    /// Creates a runtime with explicit worker and shard counts.
    pub fn with_shards(workers: usize, shards: usize) -> Result<Self, String> {
        if workers == 0 {
            return Err("worker count must be non-zero".into());
        }
        if shards == 0 || shards > 32 {
            return Err("shard count must be in 1..=32".into());
        }
        let (ready_tx, ready_rx) = unbounded();
        let inner = Arc::new(Inner {
            graph: ShardedGraph::new(shards),
            ready_tx,
            registry: Mutex::new(HashMap::new()),
            last_writer: Mutex::new(HashMap::new()),
            wait: Mutex::new(WaitState::default()),
            completion: Condvar::new(),
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        });

        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let inner = Arc::clone(&inner);
            let rx = ready_rx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("nexus-runtime-worker-{w}"))
                    .spawn(move || {
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                WorkerMsg::Run(task) => inner.execute(task),
                                WorkerMsg::Stop => break,
                            }
                        }
                    })
                    .map_err(|e| format!("failed to spawn worker: {e}"))?,
            );
        }

        Ok(Runtime {
            inner,
            workers: handles,
            ready_rx,
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits a task; returns its id. The task runs as soon as every earlier
    /// task it conflicts with (per its declared footprint) has finished.
    pub fn submit(&self, mut spec: TaskSpec) -> TaskId {
        spec.normalize();
        let id = TaskId(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);

        let state = Arc::new(TaskState {
            id,
            body: Mutex::new(Some(spec.body)),
            accesses: spec.accesses,
            pending: AtomicU32::new(1), // submission guard
            done: AtomicBool::new(false),
        });

        self.inner.wait.lock().outstanding += 1;
        self.inner.registry.lock().insert(id, Arc::clone(&state));

        for &(key, mode) in &state.accesses {
            if mode.writes() {
                self.inner
                    .last_writer
                    .lock()
                    .insert(key, Arc::clone(&state));
            }
            // Optimistically count the dependency before asking the graph, so a
            // concurrent release can never drive `pending` to zero early.
            state.pending.fetch_add(1, Ordering::AcqRel);
            let blocked = self.inner.graph.insert(id, key, mode).blocked;
            if !blocked {
                state.pending.fetch_sub(1, Ordering::AcqRel);
            }
        }

        // Drop the submission guard; dispatch if nothing blocks the task.
        if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.inner
                .ready_tx
                .send(WorkerMsg::Run(state))
                .expect("worker channel closed");
        }
        id
    }

    /// `#pragma omp taskwait`: blocks until every submitted task has finished.
    /// Must not be called from inside a task body.
    pub fn taskwait(&self) {
        let mut wait = self.inner.wait.lock();
        if wait.outstanding == 0 {
            return;
        }
        wait.barrier_waiters += 1;
        while wait.outstanding > 0 {
            self.inner.completion.wait(&mut wait);
        }
        wait.barrier_waiters -= 1;
    }

    /// `#pragma omp taskwait on(key)`: blocks until the most recently submitted
    /// writer of `key` (if any) has finished. A key nobody is currently
    /// writing (cold, or whose writer already retired) returns immediately.
    pub fn taskwait_on(&self, key: u64) {
        let target = self.inner.last_writer.lock().get(&key).cloned();
        let Some(state) = target else { return };
        let mut wait = self.inner.wait.lock();
        if state.done.load(Ordering::Acquire) {
            return;
        }
        *wait.waited.entry(state.id).or_insert(0) += 1;
        while !state.done.load(Ordering::Acquire) {
            self.inner.completion.wait(&mut wait);
        }
        match wait.waited.get_mut(&state.id) {
            Some(count) if *count > 1 => *count -= 1,
            _ => {
                wait.waited.remove(&state.id);
            }
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            executed: self.inner.executed.load(Ordering::Relaxed),
            workers: self.workers.len(),
            shards: self.inner.graph.shards(),
            max_waiters_on_a_key: self.inner.graph.max_kickoff_len(),
            tracked_writers: self.inner.last_writer.lock().len(),
        }
    }

    /// Waits for outstanding work and stops the worker threads. Called
    /// automatically on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.taskwait();
        for _ in 0..self.workers.len() {
            let _ = self.inner.ready_tx.send(WorkerMsg::Stop);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Drain any leftover stop messages so repeated shutdowns are harmless.
        while self.ready_rx.try_recv().is_ok() {}
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn independent_tasks_all_run() {
        let rt = Runtime::new(4).unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..200u64 {
            let counter = Arc::clone(&counter);
            rt.submit(
                TaskSpec::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
                .output(i * 64),
            );
        }
        rt.taskwait();
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        let stats = rt.stats();
        assert_eq!(stats.submitted, 200);
        assert_eq!(stats.executed, 200);
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.shards, 6);
    }

    #[test]
    fn chains_preserve_program_order() {
        let rt = Runtime::with_shards(8, 4).unwrap();
        // 16 independent chains; within each chain, tasks must observe strictly
        // increasing sequence numbers.
        let chains: Vec<Arc<Mutex<Vec<u32>>>> =
            (0..16).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
        for step in 0..50u32 {
            for (c, log) in chains.iter().enumerate() {
                let log = Arc::clone(log);
                rt.submit(
                    TaskSpec::new(move || {
                        log.lock().push(step);
                    })
                    .inout(c as u64),
                );
            }
        }
        rt.taskwait();
        for log in &chains {
            let v = log.lock();
            assert_eq!(v.len(), 50);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "chain ran out of order");
        }
    }

    #[test]
    fn readers_wait_for_writer_and_writer_waits_for_readers() {
        let rt = Runtime::new(4).unwrap();
        let value = Arc::new(AtomicUsize::new(0));
        let observed = Arc::new(Mutex::new(Vec::new()));

        // Producer writes 42.
        {
            let value = Arc::clone(&value);
            rt.submit(
                TaskSpec::new(move || {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    value.store(42, Ordering::SeqCst);
                })
                .output(0x100),
            );
        }
        // Readers must see 42.
        for _ in 0..8 {
            let value = Arc::clone(&value);
            let observed = Arc::clone(&observed);
            rt.submit(
                TaskSpec::new(move || {
                    observed.lock().push(value.load(Ordering::SeqCst));
                })
                .input(0x100),
            );
        }
        // A final writer must run after all readers.
        {
            let value = Arc::clone(&value);
            rt.submit(
                TaskSpec::new(move || {
                    value.store(7, Ordering::SeqCst);
                })
                .inout(0x100),
            );
        }
        rt.taskwait();
        let seen = observed.lock();
        assert_eq!(seen.len(), 8);
        assert!(
            seen.iter().all(|&v| v == 42),
            "a reader overtook the producer: {seen:?}"
        );
        assert_eq!(value.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn wavefront_computation_matches_sequential_result() {
        // Dynamic-programming wavefront (Listing 1 shape): cell = left + upright + 1.
        const R: usize = 12;
        const C: usize = 16;
        let rt = Runtime::with_shards(6, 6).unwrap();
        let grid: Arc<Vec<AtomicU64>> = Arc::new((0..R * C).map(|_| AtomicU64::new(0)).collect());
        let key = |r: usize, c: usize| (r * C + c) as u64 * 64;

        for r in 0..R {
            for c in 0..C {
                let grid = Arc::clone(&grid);
                let mut spec = TaskSpec::new(move || {
                    let left = if c > 0 {
                        grid[r * C + c - 1].load(Ordering::SeqCst)
                    } else {
                        0
                    };
                    let upright = if r > 0 && c + 1 < C {
                        grid[(r - 1) * C + c + 1].load(Ordering::SeqCst)
                    } else {
                        0
                    };
                    grid[r * C + c].store(left + upright + 1, Ordering::SeqCst);
                })
                .inout(key(r, c));
                if c > 0 {
                    spec = spec.input(key(r, c - 1));
                }
                if r > 0 && c + 1 < C {
                    spec = spec.input(key(r - 1, c + 1));
                }
                rt.submit(spec);
            }
        }
        rt.taskwait();

        // Sequential reference.
        let mut reference = vec![0u64; R * C];
        for r in 0..R {
            for c in 0..C {
                let left = if c > 0 { reference[r * C + c - 1] } else { 0 };
                let upright = if r > 0 && c + 1 < C {
                    reference[(r - 1) * C + c + 1]
                } else {
                    0
                };
                reference[r * C + c] = left + upright + 1;
            }
        }
        for i in 0..R * C {
            assert_eq!(grid[i].load(Ordering::SeqCst), reference[i], "cell {i}");
        }
        assert!(rt.stats().max_waiters_on_a_key <= R * C);
    }

    #[test]
    fn taskwait_on_waits_for_the_named_key_only() {
        let rt = Runtime::new(2).unwrap();
        let fast_done = Arc::new(AtomicBool::new(false));
        let slow_done = Arc::new(AtomicBool::new(false));
        {
            let slow_done = Arc::clone(&slow_done);
            rt.submit(
                TaskSpec::new(move || {
                    std::thread::sleep(std::time::Duration::from_millis(150));
                    slow_done.store(true, Ordering::SeqCst);
                })
                .output(0xA),
            );
        }
        {
            let fast_done = Arc::clone(&fast_done);
            rt.submit(
                TaskSpec::new(move || {
                    fast_done.store(true, Ordering::SeqCst);
                })
                .output(0xB),
            );
        }
        rt.taskwait_on(0xB);
        assert!(fast_done.load(Ordering::SeqCst));
        // Waiting on an unknown key returns immediately.
        rt.taskwait_on(0xDEAD);
        rt.taskwait();
        assert!(slow_done.load(Ordering::SeqCst));
    }

    #[test]
    fn retired_writers_are_pruned_from_the_taskwait_on_table() {
        let rt = Runtime::new(4).unwrap();
        for i in 0..500u64 {
            rt.submit(TaskSpec::new(|| {}).output(i * 64));
        }
        rt.taskwait();
        // Without pruning this would hold 500 Arc<TaskState> forever.
        assert_eq!(rt.stats().tracked_writers, 0);
        // A key whose writer already retired behaves like a cold key.
        rt.taskwait_on(0);
        rt.taskwait_on(64);
    }

    #[test]
    fn cold_key_wait_returns_immediately_despite_running_tasks() {
        let rt = Runtime::new(2).unwrap();
        let slow_done = Arc::new(AtomicBool::new(false));
        {
            let slow_done = Arc::clone(&slow_done);
            rt.submit(
                TaskSpec::new(move || {
                    std::thread::sleep(std::time::Duration::from_millis(400));
                    slow_done.store(true, Ordering::SeqCst);
                })
                .output(0xA),
            );
        }
        // Neither a never-written key nor an already-retired writer's key may
        // wait for the unrelated slow task.
        let t0 = std::time::Instant::now();
        rt.taskwait_on(0xDEAD);
        rt.submit(TaskSpec::new(|| {}).output(0xB));
        while rt.stats().executed == 0 {
            std::thread::yield_now();
        }
        rt.taskwait_on(0xB);
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(200),
            "cold-key waits blocked on an unrelated task ({:?})",
            t0.elapsed()
        );
        assert!(!slow_done.load(Ordering::SeqCst));
        rt.taskwait();
        assert!(slow_done.load(Ordering::SeqCst));
    }

    #[test]
    fn concurrent_taskwait_on_waiters_are_all_released() {
        let rt = Arc::new(Runtime::new(2).unwrap());
        let done = Arc::new(AtomicBool::new(false));
        {
            let done = Arc::clone(&done);
            rt.submit(
                TaskSpec::new(move || {
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    done.store(true, Ordering::SeqCst);
                })
                .output(0xC0),
            );
        }
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let rt = Arc::clone(&rt);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    rt.taskwait_on(0xC0);
                    assert!(done.load(Ordering::SeqCst));
                })
            })
            .collect();
        for w in waiters {
            w.join().unwrap();
        }
        rt.taskwait();
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(Runtime::new(0).is_err());
        assert!(Runtime::with_shards(2, 0).is_err());
        assert!(Runtime::with_shards(2, 64).is_err());
    }

    #[test]
    fn explicit_shutdown_and_drop_are_both_clean() {
        let rt = Runtime::new(2).unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..10u64 {
            let counter = Arc::clone(&counter);
            rt.submit(
                TaskSpec::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
                .inout(i),
            );
        }
        rt.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        // Dropping a fresh runtime without work is also fine.
        let rt2 = Runtime::new(1).unwrap();
        drop(rt2);
    }
}
