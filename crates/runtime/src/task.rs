//! Task specifications: a closure plus its declared data footprint.

use nexus_trace::Direction;

/// How a task accesses a resource key (mirrors the OmpSs clauses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// `input(...)` — read-only access.
    Read,
    /// `output(...)` — write access that does not read the previous value.
    Write,
    /// `inout(...)` — read-modify-write access.
    ReadWrite,
}

impl AccessMode {
    /// The trace-model direction equivalent.
    pub(crate) fn direction(self) -> Direction {
        match self {
            AccessMode::Read => Direction::In,
            AccessMode::Write => Direction::Out,
            AccessMode::ReadWrite => Direction::InOut,
        }
    }

    /// True if the access writes the resource.
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::ReadWrite)
    }
}

/// A task to be submitted to the [`crate::Runtime`]: a closure plus the list of
/// resource keys it reads and writes.
pub struct TaskSpec {
    pub(crate) body: Box<dyn FnOnce() + Send + 'static>,
    pub(crate) accesses: Vec<(u64, AccessMode)>,
}

impl TaskSpec {
    /// Creates a task from a closure. Declare its footprint with
    /// [`TaskSpec::input`] / [`TaskSpec::output`] / [`TaskSpec::inout`].
    pub fn new(body: impl FnOnce() + Send + 'static) -> Self {
        TaskSpec {
            body: Box::new(body),
            accesses: Vec::new(),
        }
    }

    /// Declares a read-only dependency on `key`.
    pub fn input(mut self, key: u64) -> Self {
        self.accesses.push((key, AccessMode::Read));
        self
    }

    /// Declares a write dependency on `key`.
    pub fn output(mut self, key: u64) -> Self {
        self.accesses.push((key, AccessMode::Write));
        self
    }

    /// Declares a read-write dependency on `key`.
    pub fn inout(mut self, key: u64) -> Self {
        self.accesses.push((key, AccessMode::ReadWrite));
        self
    }

    /// Declares several read-only dependencies.
    pub fn inputs(mut self, keys: &[u64]) -> Self {
        for &k in keys {
            self.accesses.push((k, AccessMode::Read));
        }
        self
    }

    /// Declares several write dependencies.
    pub fn outputs(mut self, keys: &[u64]) -> Self {
        for &k in keys {
            self.accesses.push((k, AccessMode::Write));
        }
        self
    }

    /// Number of declared accesses.
    pub fn num_accesses(&self) -> usize {
        self.accesses.len()
    }

    /// Removes duplicate keys, merging their access modes (a key that is both
    /// read and written becomes `ReadWrite`). Called automatically at submit.
    pub(crate) fn normalize(&mut self) {
        use std::collections::HashMap;
        if self.accesses.len() < 2 {
            return;
        }
        let mut merged: HashMap<u64, AccessMode> = HashMap::new();
        let mut order: Vec<u64> = Vec::new();
        for (key, mode) in self.accesses.drain(..) {
            match merged.get_mut(&key) {
                None => {
                    merged.insert(key, mode);
                    order.push(key);
                }
                Some(existing) => {
                    let reads = matches!(*existing, AccessMode::Read | AccessMode::ReadWrite)
                        || matches!(mode, AccessMode::Read | AccessMode::ReadWrite);
                    let writes = existing.writes() || mode.writes();
                    *existing = match (reads, writes) {
                        (_, false) => AccessMode::Read,
                        (false, true) => AccessMode::Write,
                        (true, true) => AccessMode::ReadWrite,
                    };
                }
            }
        }
        self.accesses = order.into_iter().map(|k| (k, merged[&k])).collect();
    }
}

impl std::fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSpec")
            .field("accesses", &self.accesses)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_accesses() {
        let spec = TaskSpec::new(|| {})
            .input(1)
            .output(2)
            .inout(3)
            .inputs(&[4, 5]);
        assert_eq!(spec.num_accesses(), 5);
        assert!(AccessMode::Write.writes());
        assert!(!AccessMode::Read.writes());
        assert!(format!("{spec:?}").contains("accesses"));
    }

    #[test]
    fn normalize_merges_duplicates() {
        let mut spec = TaskSpec::new(|| {}).input(7).output(7).input(9);
        spec.normalize();
        assert_eq!(spec.num_accesses(), 2);
        assert_eq!(spec.accesses[0], (7, AccessMode::ReadWrite));
        assert_eq!(spec.accesses[1], (9, AccessMode::Read));
    }

    #[test]
    fn access_mode_direction_mapping() {
        assert_eq!(AccessMode::Read.direction(), Direction::In);
        assert_eq!(AccessMode::Write.direction(), Direction::Out);
        assert_eq!(AccessMode::ReadWrite.direction(), Direction::InOut);
    }
}
