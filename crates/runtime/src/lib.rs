//! # nexus-runtime — a task-parallel runtime with Nexus#-style dependency resolution
//!
//! The paper's contribution is a *hardware* dependency manager; this crate is
//! the software embodiment of the same algorithm, usable today as a library:
//!
//! * tasks declare the data they read and write as 64-bit *resource keys*
//!   (addresses, row indices, block ids, …) — the equivalent of the
//!   `in/out/inout` clauses of Listing 1,
//! * dependency resolution is **sharded** exactly like Nexus# distributes
//!   addresses over task graphs: each key is routed by the paper's XOR hash to
//!   one of N independent, individually-locked dependency trackers, so the
//!   insertion of different parameters (and of different tasks) proceeds in
//!   parallel,
//! * a per-task atomic dependence counter plays the role of the Dependence
//!   Counts Arbiter's table: when it reaches zero the task is handed to the
//!   worker pool,
//! * `taskwait` and `taskwait on(key)` mirror the OmpSs pragmas.
//!
//! ```
//! use nexus_runtime::{Runtime, TaskSpec};
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let rt = Runtime::new(4).unwrap();
//! let total = Arc::new(AtomicU64::new(0));
//!
//! // A chain: each task reads and writes the same resource, so they run in
//! // submission order; independent resources run in parallel.
//! for key in 0..8u64 {
//!     for _ in 0..10 {
//!         let total = Arc::clone(&total);
//!         rt.submit(
//!             TaskSpec::new(move || {
//!                 total.fetch_add(1, Ordering::Relaxed);
//!             })
//!             .inout(key),
//!         );
//!     }
//! }
//! rt.taskwait();
//! assert_eq!(total.load(Ordering::Relaxed), 80);
//! ```
//!
//! The runtime trusts the declared footprints (exactly as OmpSs trusts its
//! pragmas): a closure that touches undeclared shared state is a data race the
//! runtime cannot see.

#![warn(missing_docs)]

pub mod runtime;
pub mod shard;
pub mod task;

pub use runtime::{Runtime, RuntimeStats};
pub use shard::ShardedGraph;
pub use task::{AccessMode, TaskSpec};
