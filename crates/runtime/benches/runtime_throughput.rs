//! Criterion benchmarks of the real threaded runtime: submission + execution
//! throughput for independent tasks, dependent chains and a wavefront, and the
//! scaling of the sharded dependency graph with the shard count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nexus_runtime::{Runtime, TaskSpec};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const TASKS: u64 = 2_000;

fn bench_independent_tasks(c: &mut Criterion) {
    let mut group = c.benchmark_group("rt_independent_tasks");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(TASKS));
    for workers in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("workers", workers), |b| {
            b.iter(|| {
                let rt = Runtime::with_shards(workers, 6).unwrap();
                let acc = Arc::new(AtomicU64::new(0));
                for i in 0..TASKS {
                    let acc = Arc::clone(&acc);
                    rt.submit(
                        TaskSpec::new(move || {
                            acc.fetch_add(black_box(i), Ordering::Relaxed);
                        })
                        .output(i * 64),
                    );
                }
                rt.taskwait();
                black_box(acc.load(Ordering::Relaxed))
            })
        });
    }
    group.finish();
}

fn bench_dependency_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("rt_dependency_chains");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(TASKS));
    // 16 independent chains of TASKS/16 tasks each: exercises the release path.
    group.bench_function("16_chains", |b| {
        b.iter(|| {
            let rt = Runtime::with_shards(4, 6).unwrap();
            let acc = Arc::new(AtomicU64::new(0));
            for step in 0..(TASKS / 16) {
                for chain in 0..16u64 {
                    let acc = Arc::clone(&acc);
                    rt.submit(
                        TaskSpec::new(move || {
                            acc.fetch_add(black_box(step), Ordering::Relaxed);
                        })
                        .inout(chain * 64),
                    );
                }
            }
            rt.taskwait();
            black_box(acc.load(Ordering::Relaxed))
        })
    });
    group.finish();
}

fn bench_shard_count(c: &mut Criterion) {
    // How much does sharding the dependency graph matter under submission
    // pressure? (the software analogue of the Fig. 7 task-graph-count sweep).
    let mut group = c.benchmark_group("rt_shard_count");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(TASKS));
    for shards in [1usize, 2, 6, 16] {
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| {
                let rt = Runtime::with_shards(4, shards).unwrap();
                for i in 0..TASKS {
                    rt.submit(
                        TaskSpec::new(move || {
                            black_box(i);
                        })
                        .input((i % 97) * 64)
                        .output((10_000 + i) * 64),
                    );
                }
                rt.taskwait();
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_independent_tasks,
    bench_dependency_chains,
    bench_shard_count
);
criterion_main!(benches);
