//! Property tests of the host simulation driver: for arbitrary task graphs and
//! worker counts, the ideal-manager simulation must respect the fundamental
//! scheduling bounds (work law, critical-path law, greedy-scheduler bound) and
//! conserve tasks.

use nexus_host::{simulate, HostConfig, IdealManager};
use nexus_sim::SimDuration;
use nexus_taskgraph::refgraph::ParallelismProfile;
use nexus_trace::{TaskDescriptor, Trace};
use proptest::prelude::*;

/// Random DAG-ish traces: tasks touch a small pool of addresses with random
/// directions and durations, with occasional taskwaits.
fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(
        (
            prop::collection::vec((0..16u64, 0..3u8), 1..4),
            1u64..500,
            prop::bool::weighted(0.07),
        ),
        1..80,
    )
    .prop_map(|specs| {
        let mut trace = Trace::new("proptest-host");
        for (i, (params, dur_us, barrier_after)) in specs.into_iter().enumerate() {
            let mut b = TaskDescriptor::builder(i as u64).duration(SimDuration::from_us(dur_us));
            let mut used = std::collections::HashSet::new();
            for (slot, dir) in params {
                let addr = 0x4000 + slot * 64;
                if !used.insert(addr) {
                    continue;
                }
                b = match dir {
                    0 => b.input(addr),
                    1 => b.output(addr),
                    _ => b.inout(addr),
                };
            }
            trace.submit(b.build());
            if barrier_after {
                trace.taskwait();
            }
        }
        trace.taskwait();
        trace
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn ideal_simulation_respects_scheduling_laws(
        trace in arb_trace(),
        workers in 1usize..40,
    ) {
        let out = simulate(&trace, &mut IdealManager::new(), &HostConfig::with_workers(workers));
        let profile = ParallelismProfile::of(&trace);
        let work_us = out.total_work.as_us_f64();
        let makespan_us = out.makespan.as_us_f64();

        // Every task ran.
        prop_assert_eq!(out.tasks as usize, trace.task_count());

        // Work law: T_p >= T_1 / p.
        prop_assert!(makespan_us + 1e-6 >= work_us / workers as f64,
            "work law violated: {} < {}/{}", makespan_us, work_us, workers);

        // Critical-path law: T_p >= T_inf.
        prop_assert!(makespan_us + 1e-6 >= profile.critical_path_us,
            "critical-path law violated: {} < {}", makespan_us, profile.critical_path_us);

        // Greedy-scheduler (Brent) bound: T_p <= T_1/p + T_inf.
        prop_assert!(makespan_us <= work_us / workers as f64 + profile.critical_path_us + 1e-6,
            "greedy bound violated: {} > {} + {}",
            makespan_us, work_us / workers as f64, profile.critical_path_us);

        // Speedup never exceeds the worker count.
        prop_assert!(out.speedup() <= workers as f64 + 1e-9);
    }

    #[test]
    fn more_workers_never_slow_down_the_ideal_manager(
        trace in arb_trace(),
    ) {
        // With zero-overhead management and greedy FIFO dispatch in readiness
        // order, doubling the workers cannot hurt by more than the classical
        // anomaly factor; in this driver readiness order is identical across
        // worker counts, so we check plain monotonicity with a small tolerance.
        let mut last = f64::INFINITY;
        for workers in [1usize, 2, 4, 8, 16, 32] {
            let out = simulate(&trace, &mut IdealManager::new(), &HostConfig::with_workers(workers));
            let makespan = out.makespan.as_us_f64();
            prop_assert!(makespan <= last * 1.05,
                "makespan grew from {last} to {makespan} at {workers} workers");
            last = makespan;
        }
    }
}

#[test]
fn single_worker_makespan_equals_total_work_plus_nothing() {
    // With one worker and an ideal manager the makespan is exactly the total
    // work for any trace without master compute.
    let trace = nexus_trace::generators::micro::fork_join(13, SimDuration::from_us(17));
    let out = simulate(&trace, &mut IdealManager::new(), &HostConfig::with_workers(1));
    assert_eq!(out.makespan, trace.total_work());
}
