//! Property tests of the host simulation driver: for arbitrary task graphs and
//! worker counts, the ideal-manager simulation must respect the fundamental
//! scheduling bounds (work law, critical-path law, greedy-scheduler bound) and
//! conserve tasks.
//!
//! The random traces are generated with the workspace's own deterministic
//! [`SimRng`] (the build environment has no crates.io access, so `proptest` is
//! not available); every case is reproducible from its printed seed.

use nexus_host::{simulate, HostConfig, IdealManager};
use nexus_sim::{SimDuration, SimRng};
use nexus_taskgraph::refgraph::ParallelismProfile;
use nexus_trace::{TaskDescriptor, Trace};

const CASES: u64 = 96;

/// Random DAG-ish traces: tasks touch a small pool of addresses with random
/// directions and durations, with occasional taskwaits.
fn arb_trace(rng: &mut SimRng) -> Trace {
    let mut trace = Trace::new("proptest-host");
    let tasks = rng.range(1, 80);
    for i in 0..tasks {
        let mut b = TaskDescriptor::builder(i).duration(SimDuration::from_us(rng.range(1, 500)));
        let mut used = std::collections::HashSet::new();
        for _ in 0..rng.range(1, 4) {
            let addr = 0x4000 + rng.next_below(16) * 64;
            if !used.insert(addr) {
                continue;
            }
            b = match rng.next_below(3) {
                0 => b.input(addr),
                1 => b.output(addr),
                _ => b.inout(addr),
            };
        }
        trace.submit(b.build());
        if rng.chance(0.07) {
            trace.taskwait();
        }
    }
    trace.taskwait();
    trace
}

#[test]
fn ideal_simulation_respects_scheduling_laws() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(0x1DEA_0000 + seed);
        let trace = arb_trace(&mut rng);
        let workers = rng.range(1, 40) as usize;

        let out = simulate(
            &trace,
            &mut IdealManager::new(),
            &HostConfig::with_workers(workers),
        );
        let profile = ParallelismProfile::of(&trace);
        let work_us = out.total_work.as_us_f64();
        let makespan_us = out.makespan.as_us_f64();

        // Every task ran.
        assert_eq!(out.tasks as usize, trace.task_count(), "seed {seed}");

        // Work law: T_p >= T_1 / p.
        assert!(
            makespan_us + 1e-6 >= work_us / workers as f64,
            "seed {seed}: work law violated: {makespan_us} < {work_us}/{workers}"
        );

        // Critical-path law: T_p >= T_inf.
        assert!(
            makespan_us + 1e-6 >= profile.critical_path_us,
            "seed {seed}: critical-path law violated: {makespan_us} < {}",
            profile.critical_path_us
        );

        // Greedy-scheduler (Brent) bound: T_p <= T_1/p + T_inf.
        assert!(
            makespan_us <= work_us / workers as f64 + profile.critical_path_us + 1e-6,
            "seed {seed}: greedy bound violated: {makespan_us} > {} + {}",
            work_us / workers as f64,
            profile.critical_path_us
        );

        // Speedup never exceeds the worker count.
        assert!(out.speedup() <= workers as f64 + 1e-9, "seed {seed}");
    }
}

#[test]
fn more_workers_never_slow_down_the_ideal_manager() {
    // With zero-overhead management and greedy FIFO dispatch in readiness
    // order, doubling the workers cannot hurt by more than the classical
    // anomaly factor; in this driver readiness order is identical across
    // worker counts, so we check plain monotonicity with a small tolerance.
    for seed in 0..CASES {
        let mut rng = SimRng::new(0x2D0_0000 + seed);
        let trace = arb_trace(&mut rng);
        let mut last = f64::INFINITY;
        for workers in [1usize, 2, 4, 8, 16, 32] {
            let out = simulate(
                &trace,
                &mut IdealManager::new(),
                &HostConfig::with_workers(workers),
            );
            let makespan = out.makespan.as_us_f64();
            assert!(
                makespan <= last * 1.05,
                "seed {seed}: makespan grew from {last} to {makespan} at {workers} workers"
            );
            last = makespan;
        }
    }
}

#[test]
fn single_worker_makespan_equals_total_work_plus_nothing() {
    // With one worker and an ideal manager the makespan is exactly the total
    // work for any trace without master compute.
    let trace = nexus_trace::generators::micro::fork_join(13, SimDuration::from_us(17));
    let out = simulate(
        &trace,
        &mut IdealManager::new(),
        &HostConfig::with_workers(1),
    );
    assert_eq!(out.makespan, trace.total_work());
}
