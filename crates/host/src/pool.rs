//! The per-node worker-core pool.
//!
//! Both the single-node host driver ([`crate::driver::simulate`]) and the
//! multi-node cluster driver (`nexus-cluster`) run the same inner loop on each
//! simulated node: ready tasks queue up, free worker cores pull from the queue
//! in FIFO order, and a finished worker immediately looks for more work.
//! [`WorkerPool`] is that loop's state machine, extracted so every driver
//! shares one implementation.
//!
//! Worker cores carry an individual *speed factor* (Specx-style heterogeneous
//! pools): [`WorkerPool::with_speeds`] builds a pool where core `w` executes
//! tasks `speeds[w]`× faster than a standard core. Dispatch is greedy — the
//! fastest free core is handed the next ready task (ties break toward the
//! lowest core index), which on a uniform pool reduces exactly to the old
//! anonymous-core behaviour. Speeds are kept in milli-units (`1000` = a
//! standard core) so drivers can scale simulated durations with exact integer
//! arithmetic.

use nexus_trace::TaskId;
use std::collections::VecDeque;

/// FIFO ready-queue plus free-worker accounting for one node, with per-core
/// speed factors (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct WorkerPool {
    ready: VecDeque<TaskId>,
    busy: Vec<bool>,
    free: usize,
    /// Per-core speed in milli-units (1000 = a standard core).
    speeds_milli: Vec<u64>,
    /// Core indices in dispatch preference order: fastest first, lowest index
    /// on ties (precomputed — speeds are fixed for the pool's lifetime).
    order: Vec<usize>,
    /// Tasks completed per core.
    done: Vec<u64>,
}

impl WorkerPool {
    /// Creates a pool of `workers` idle standard-speed worker cores.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker core");
        Self::from_milli(vec![1000; workers])
    }

    /// Creates a pool with one core per entry of `speeds`, where `speeds[w]`
    /// is core `w`'s speed factor relative to a standard core (`1.0`); a
    /// 2×-fast core executes any task in half the time.
    ///
    /// # Panics
    /// Panics if `speeds` is empty or any factor is not a positive finite
    /// number.
    pub fn with_speeds(speeds: &[f64]) -> Self {
        assert!(!speeds.is_empty(), "need at least one worker core");
        let milli = speeds
            .iter()
            .map(|&s| {
                assert!(
                    s.is_finite() && s > 0.0,
                    "worker speed factor must be a positive finite number (got {s})"
                );
                ((s * 1000.0).round() as u64).max(1)
            })
            .collect();
        Self::from_milli(milli)
    }

    fn from_milli(speeds_milli: Vec<u64>) -> Self {
        let workers = speeds_milli.len();
        let mut order: Vec<usize> = (0..workers).collect();
        order.sort_by_key(|&w| (u64::MAX - speeds_milli[w], w));
        WorkerPool {
            ready: VecDeque::new(),
            busy: vec![false; workers],
            free: workers,
            speeds_milli,
            order,
            done: vec![0; workers],
        }
    }

    /// Total worker cores in the pool.
    #[inline]
    pub fn workers(&self) -> usize {
        self.busy.len()
    }

    /// Worker cores currently idle.
    #[inline]
    pub fn free(&self) -> usize {
        self.free
    }

    /// Ready tasks waiting for a worker.
    #[inline]
    pub fn queued(&self) -> usize {
        self.ready.len()
    }

    /// Core `worker`'s speed in milli-units (1000 = a standard core).
    #[inline]
    pub fn speed_milli(&self, worker: usize) -> u64 {
        self.speeds_milli[worker]
    }

    /// Aggregate service capacity of the pool in milli-units — the sum of the
    /// per-core speeds (what steal policies normalize backlogs by).
    pub fn total_speed_milli(&self) -> u64 {
        self.speeds_milli.iter().sum()
    }

    /// Tasks completed per core so far (indexed by core).
    pub fn per_worker_done(&self) -> &[u64] {
        &self.done
    }

    /// Appends a ready task to the queue (it does not start until
    /// [`WorkerPool::dispatch`] hands it to a free worker).
    pub fn enqueue(&mut self, task: TaskId) {
        self.ready.push_back(task);
    }

    /// Returns core `worker` to the pool after its finish-notification cost,
    /// crediting it with one completed task.
    pub fn release(&mut self, worker: usize) {
        debug_assert!(self.busy[worker], "released a core that was not busy");
        self.busy[worker] = false;
        self.done[worker] += 1;
        self.free += 1;
    }

    /// Hands queued tasks to free workers in FIFO order — fastest free core
    /// first — invoking `start(task, worker, speed_milli)` for each dispatch.
    /// The callback typically charges the manager's dispatch cost and
    /// schedules the task's completion event after `duration * 1000 /
    /// speed_milli`.
    pub fn dispatch(&mut self, mut start: impl FnMut(TaskId, usize, u64)) {
        while self.free > 0 {
            let Some(task) = self.ready.pop_front() else {
                break;
            };
            let worker = self
                .order
                .iter()
                .copied()
                .find(|&w| !self.busy[w])
                .expect("free count positive but no idle core");
            self.busy[worker] = true;
            self.free -= 1;
            start(task, worker, self.speeds_milli[worker]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_is_fifo_and_bounded_by_free_workers() {
        let mut pool = WorkerPool::new(2);
        for id in 0..4 {
            pool.enqueue(TaskId(id));
        }
        let mut started = Vec::new();
        pool.dispatch(|t, _, _| started.push(t));
        assert_eq!(started, vec![TaskId(0), TaskId(1)]);
        assert_eq!(pool.free(), 0);
        assert_eq!(pool.queued(), 2);

        pool.release(0);
        pool.dispatch(|t, _, _| started.push(t));
        assert_eq!(started.last(), Some(&TaskId(2)));
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn idle_pool_dispatches_nothing() {
        let mut pool = WorkerPool::new(3);
        pool.dispatch(|_, _, _| panic!("nothing queued"));
        assert_eq!(pool.free(), 3);
    }

    #[test]
    fn dispatch_prefers_the_fastest_free_core() {
        let mut pool = WorkerPool::with_speeds(&[1.0, 2.0, 1.0]);
        assert_eq!(pool.total_speed_milli(), 4000);
        pool.enqueue(TaskId(0));
        pool.enqueue(TaskId(1));
        let mut picked = Vec::new();
        pool.dispatch(|_, w, s| picked.push((w, s)));
        // Fastest core (1, 2000 milli) first, then the index tie-break.
        assert_eq!(picked, vec![(1, 2000), (0, 1000)]);
        pool.release(1);
        pool.enqueue(TaskId(2));
        pool.dispatch(|_, w, _| picked.push((w, 0)));
        assert_eq!(picked.last(), Some(&(1, 0)));
    }

    #[test]
    fn greedy_dispatch_credits_the_fast_core_with_more_tasks() {
        // 6 rounds of release-and-redispatch on a [2×, 1×] pool, modelling the
        // fast core finishing twice as often: it should complete ~2× as many.
        let mut pool = WorkerPool::with_speeds(&[2.0, 1.0]);
        for id in 0..8 {
            pool.enqueue(TaskId(id));
        }
        pool.dispatch(|_, _, _| {});
        // Fast core finishes two tasks for every one of the slow core.
        for _ in 0..2 {
            pool.release(0);
            pool.dispatch(|_, _, _| {});
            pool.release(0);
            pool.dispatch(|_, _, _| {});
            pool.release(1);
            pool.dispatch(|_, _, _| {});
        }
        let done = pool.per_worker_done();
        assert_eq!(done, &[4, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_pool_rejected() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn nonpositive_speed_rejected() {
        let _ = WorkerPool::with_speeds(&[1.0, 0.0]);
    }
}
