//! The per-node worker-core pool.
//!
//! Both the single-node host driver ([`crate::driver::simulate`]) and the
//! multi-node cluster driver (`nexus-cluster`) run the same inner loop on each
//! simulated node: ready tasks queue up, free worker cores pull from the queue
//! in FIFO order, and a finished worker immediately looks for more work.
//! [`WorkerPool`] is that loop's state machine, extracted so every driver
//! shares one implementation.

use nexus_trace::TaskId;
use std::collections::VecDeque;

/// FIFO ready-queue plus free-worker accounting for one node.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    ready: VecDeque<TaskId>,
    free: usize,
    workers: usize,
}

impl WorkerPool {
    /// Creates a pool of `workers` idle worker cores.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker core");
        WorkerPool {
            ready: VecDeque::new(),
            free: workers,
            workers,
        }
    }

    /// Total worker cores in the pool.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Worker cores currently idle.
    #[inline]
    pub fn free(&self) -> usize {
        self.free
    }

    /// Ready tasks waiting for a worker.
    #[inline]
    pub fn queued(&self) -> usize {
        self.ready.len()
    }

    /// Appends a ready task to the queue (it does not start until
    /// [`WorkerPool::dispatch`] hands it to a free worker).
    pub fn enqueue(&mut self, task: TaskId) {
        self.ready.push_back(task);
    }

    /// Returns a worker core to the pool after its finish-notification cost.
    pub fn release(&mut self) {
        self.free += 1;
        debug_assert!(
            self.free <= self.workers,
            "released more workers than exist"
        );
    }

    /// Hands queued tasks to free workers in FIFO order, invoking `start` for
    /// each dispatched task. The callback typically charges the manager's
    /// dispatch cost and schedules the task's completion event.
    pub fn dispatch(&mut self, mut start: impl FnMut(TaskId)) {
        while self.free > 0 {
            let Some(task) = self.ready.pop_front() else {
                break;
            };
            self.free -= 1;
            start(task);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_is_fifo_and_bounded_by_free_workers() {
        let mut pool = WorkerPool::new(2);
        for id in 0..4 {
            pool.enqueue(TaskId(id));
        }
        let mut started = Vec::new();
        pool.dispatch(|t| started.push(t));
        assert_eq!(started, vec![TaskId(0), TaskId(1)]);
        assert_eq!(pool.free(), 0);
        assert_eq!(pool.queued(), 2);

        pool.release();
        pool.dispatch(|t| started.push(t));
        assert_eq!(started.last(), Some(&TaskId(2)));
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn idle_pool_dispatches_nothing() {
        let mut pool = WorkerPool::new(3);
        pool.dispatch(|_| panic!("nothing queued"));
        assert_eq!(pool.free(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_pool_rejected() {
        let _ = WorkerPool::new(0);
    }
}
