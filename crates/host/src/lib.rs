//! # nexus-host — the simulated multicore host ("the testbench")
//!
//! §V-B of the paper: "The test bench simulates the RTS. It submits new tasks to
//! Nexus#, receives ready task information from it, schedules ready tasks to
//! worker cores and simulates their execution, and finally notifies Nexus# of
//! finished tasks."
//!
//! This crate provides exactly that, generalized over a [`TaskManager`]
//! implementation so the same driver runs the *No Overhead* ideal manager, the
//! Nanos software-runtime model, Nexus++ and Nexus#:
//!
//! * [`TaskManager`] — the manager-side interface (submit / finish / readiness
//!   and retirement notifications / capacity back-pressure),
//! * [`IdealManager`] — the paper's "No Overhead" configuration,
//! * [`simulate`] / [`HostConfig`] — the event-driven multicore simulation with
//!   a master thread replaying the trace (including `taskwait` and `taskwait
//!   on` semantics, with escalation when the manager lacks support) and a pool
//!   of worker cores,
//! * [`SimOutcome`] — makespan, speedup and diagnostic counters,
//! * [`WorkerPool`] — the per-node ready-queue / free-worker state machine,
//!   shared with the multi-node cluster driver (`nexus-cluster`),
//! * [`MasterSm`] — the master-thread state machine (`taskwait` / `taskwait
//!   on` escalation, barrier and back-pressure time bookkeeping), also shared
//!   with the cluster driver,
//! * [`sweep`] — speedup-vs-core-count curves and suite sweeps used by the
//!   benchmark harness to regenerate Figs. 7–9 and Table IV.

#![warn(missing_docs)]

pub mod driver;
pub mod ideal;
pub mod manager;
pub mod master;
pub mod metrics;
pub mod pool;
pub mod sweep;

pub use driver::{simulate, HostConfig};
pub use ideal::IdealManager;
pub use manager::{ManagerEvent, TaskManager};
pub use master::{MasterSm, MasterStep};
pub use metrics::SimOutcome;
pub use pool::WorkerPool;
pub use sweep::{speedup_curve, SpeedupCurve, SpeedupPoint};

/// Convenience prelude.
pub mod prelude {
    pub use crate::driver::{simulate, HostConfig};
    pub use crate::ideal::IdealManager;
    pub use crate::manager::{ManagerEvent, TaskManager};
    pub use crate::metrics::SimOutcome;
    pub use crate::pool::WorkerPool;
    pub use crate::sweep::{speedup_curve, SpeedupCurve, SpeedupPoint};
}
