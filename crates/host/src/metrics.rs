//! Simulation outcomes and derived metrics.

use nexus_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The result of one host simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Name of the benchmark trace.
    pub benchmark: String,
    /// Name of the task manager.
    pub manager: String,
    /// Number of worker cores simulated.
    pub workers: usize,
    /// End-to-end execution time (last retirement / master completion).
    pub makespan: SimDuration,
    /// Sum of all task durations.
    pub total_work: SimDuration,
    /// Number of tasks executed.
    pub tasks: u64,
    /// Time the master spent blocked on barriers (`taskwait` / `taskwait on`).
    pub master_barrier_time: SimDuration,
    /// Time the master spent blocked on task-pool back-pressure.
    pub master_backpressure_time: SimDuration,
    /// Aggregate time workers spent idle while tasks were outstanding.
    pub worker_idle_time: SimDuration,
    /// Manager diagnostic summary (name/value pairs).
    pub manager_stats: Vec<(String, f64)>,
}

impl SimOutcome {
    /// Speedup relative to the single-core ideal execution time, which the
    /// paper defines as the sum of the task durations ("All speedup results are
    /// calculated against the single core execution time of the ideal curve").
    pub fn speedup(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.total_work.as_us_f64() / self.makespan.as_us_f64()
        }
    }

    /// Parallel efficiency: speedup divided by the number of workers.
    pub fn efficiency(&self) -> f64 {
        if self.workers == 0 {
            0.0
        } else {
            self.speedup() / self.workers as f64
        }
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<24} {:<18} {:>4} cores  makespan {:>12}  speedup {:>7.2}x  eff {:>5.1}%",
            self.benchmark,
            self.manager,
            self.workers,
            format!("{}", self.makespan),
            self.speedup(),
            self.efficiency() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(makespan_us: u64, work_us: u64, workers: usize) -> SimOutcome {
        SimOutcome {
            benchmark: "unit".into(),
            manager: "test".into(),
            workers,
            makespan: SimDuration::from_us(makespan_us),
            total_work: SimDuration::from_us(work_us),
            tasks: 1,
            master_barrier_time: SimDuration::ZERO,
            master_backpressure_time: SimDuration::ZERO,
            worker_idle_time: SimDuration::ZERO,
            manager_stats: vec![],
        }
    }

    #[test]
    fn speedup_and_efficiency() {
        let o = outcome(250, 1000, 8);
        assert!((o.speedup() - 4.0).abs() < 1e-12);
        assert!((o.efficiency() - 0.5).abs() < 1e-12);
        assert!(o.summary().contains("4.00x"));
    }

    #[test]
    fn zero_makespan_is_benign() {
        let o = outcome(0, 0, 4);
        assert_eq!(o.speedup(), 0.0);
    }
}
