//! The task-manager interface seen by the simulated runtime system.
//!
//! A [`TaskManager`] is a *timed functional model*: it is functionally exact
//! about dependency resolution (which tasks become ready, and in which causal
//! order) and it expresses its cost by returning/annotating timestamps. The
//! host driver never inspects manager internals; it only:
//!
//! 1. asks whether a new task can be accepted ([`TaskManager::can_accept`] —
//!    back-pressure from the task pool),
//! 2. submits tasks ([`TaskManager::submit`] — returns when the master's
//!    submission interface is free again),
//! 3. notifies completions ([`TaskManager::finish`] — returns when the worker
//!    is released),
//! 4. charges the per-dispatch cost of handing a ready task to a worker
//!    ([`TaskManager::dispatch_cost`]),
//! 5. drains timestamped [`ManagerEvent`]s: *ready* (the task may start
//!    executing at that time) and *retired* (the manager has finished all
//!    bookkeeping for the task — `taskwait` waits for this).

use nexus_sim::{SimDuration, SimTime};
use nexus_trace::{TaskDescriptor, TaskId};

/// A timestamped notification produced by a task manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagerEvent {
    /// The task's dependencies are resolved and its id has been written back to
    /// the runtime: it may start executing at `at`.
    Ready {
        /// The ready task.
        task: TaskId,
        /// When the ready notification reaches the runtime.
        at: SimTime,
    },
    /// The manager has completed all bookkeeping for a finished task (its
    /// entries are cleaned up and its task-pool slot accounted). `taskwait`
    /// semantics are defined over retirement.
    Retired {
        /// The retired task.
        task: TaskId,
        /// When retirement completes.
        at: SimTime,
    },
}

impl ManagerEvent {
    /// The timestamp of the event.
    pub fn at(&self) -> SimTime {
        match self {
            ManagerEvent::Ready { at, .. } | ManagerEvent::Retired { at, .. } => *at,
        }
    }
}

/// The manager-side interface of the simulated runtime system.
pub trait TaskManager {
    /// Short human-readable name ("No Overhead", "Nanos", "Nexus++",
    /// "Nexus# (6 TGs)").
    fn name(&self) -> String;

    /// True if the manager can accept a new task submission at `now`
    /// (task-pool back-pressure). The driver re-checks after every retirement.
    fn can_accept(&self, now: SimTime) -> bool;

    /// The master submits `task` at `now`. Returns the time at which the master
    /// can continue with its next operation (submission interface busy time,
    /// software task-creation time, …). Readiness is reported asynchronously
    /// through [`TaskManager::drain_events`].
    fn submit(&mut self, task: &TaskDescriptor, now: SimTime) -> SimTime;

    /// A worker reports at `now` that `task` finished executing. Returns the
    /// time at which the worker is free to pick up new work (notification
    /// cost). Kick-offs and retirement are reported through
    /// [`TaskManager::drain_events`].
    fn finish(&mut self, task: TaskId, now: SimTime) -> SimTime;

    /// Cost charged when a ready task is handed to a worker (the runtime's
    /// scheduling path). Defaults to zero; the software runtime model uses it.
    fn dispatch_cost(&mut self, _task: TaskId, _now: SimTime) -> SimDuration {
        SimDuration::ZERO
    }

    /// Whether the manager implements the `taskwait on(addr)` pragma. Managers
    /// without support force the runtime to escalate to a full `taskwait`
    /// (§III/§VI: Nexus++ does not support it).
    fn supports_taskwait_on(&self) -> bool {
        true
    }

    /// Drains all pending notifications produced by earlier calls. Timestamps
    /// are at or after the call that generated them.
    fn drain_events(&mut self) -> Vec<ManagerEvent>;

    /// Appends all pending notifications to `out` instead of allocating a
    /// fresh vector. The drivers call this on their event hot path with a
    /// reused scratch buffer; managers with an internal pending buffer should
    /// override it to `append` (which keeps both buffers' capacity alive).
    fn drain_events_into(&mut self, out: &mut Vec<ManagerEvent>) {
        out.extend(self.drain_events());
    }

    /// Optional diagnostic key/value summary (utilizations, stall counts, …)
    /// reported at the end of a simulation.
    fn stats_summary(&self) -> Vec<(String, f64)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_timestamps_are_accessible() {
        let t = SimTime::from_ps(123);
        assert_eq!(
            ManagerEvent::Ready {
                task: TaskId(1),
                at: t
            }
            .at(),
            t
        );
        assert_eq!(
            ManagerEvent::Retired {
                task: TaskId(1),
                at: t
            }
            .at(),
            t
        );
    }
}
