//! The "No Overhead" ideal manager.
//!
//! §V-B: "This simulates the execution of an application without any overhead,
//! to determine the lower bound for the execution time of the benchmarks. In
//! this simulation, the simulation time does not advance while dependencies are
//! resolved. Only the execution time of the tasks is taken into account."
//!
//! [`IdealManager`] resolves dependencies with the [`ReferenceGraph`] at zero
//! simulated cost: submissions return immediately, tasks become ready the very
//! instant their last predecessor finishes, and retirement coincides with
//! completion. Comparing any real manager against it isolates the
//! dependency-resolution overhead (exactly how the paper uses its ideal curve).

use crate::manager::{ManagerEvent, TaskManager};
use nexus_sim::SimTime;
use nexus_taskgraph::ReferenceGraph;
use nexus_trace::{TaskDescriptor, TaskId};

/// The zero-overhead task manager.
#[derive(Debug, Default)]
pub struct IdealManager {
    graph: ReferenceGraph,
    pending: Vec<ManagerEvent>,
}

impl IdealManager {
    /// Creates a new ideal manager.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskManager for IdealManager {
    fn name(&self) -> String {
        "No Overhead".to_string()
    }

    fn can_accept(&self, _now: SimTime) -> bool {
        true // unlimited task window
    }

    fn submit(&mut self, task: &TaskDescriptor, now: SimTime) -> SimTime {
        if self.graph.insert(task) {
            self.pending.push(ManagerEvent::Ready {
                task: task.id,
                at: now,
            });
        }
        now // zero submission cost
    }

    fn finish(&mut self, task: TaskId, now: SimTime) -> SimTime {
        for ready in self.graph.retire(task) {
            self.pending.push(ManagerEvent::Ready {
                task: ready,
                at: now,
            });
        }
        self.pending.push(ManagerEvent::Retired { task, at: now });
        now // zero notification cost
    }

    fn drain_events(&mut self) -> Vec<ManagerEvent> {
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_sim::SimDuration;

    fn task(
        id: u64,
        build: impl FnOnce(nexus_trace::task::TaskBuilder) -> nexus_trace::task::TaskBuilder,
    ) -> TaskDescriptor {
        build(TaskDescriptor::builder(id).duration(SimDuration::from_us(5))).build()
    }

    #[test]
    fn independent_task_is_ready_immediately() {
        let mut m = IdealManager::new();
        let t = task(0, |b| b.output(0x100));
        let release = m.submit(&t, SimTime::ZERO);
        assert_eq!(release, SimTime::ZERO);
        let events = m.drain_events();
        assert_eq!(
            events,
            vec![ManagerEvent::Ready {
                task: TaskId(0),
                at: SimTime::ZERO
            }]
        );
    }

    #[test]
    fn dependent_task_becomes_ready_at_predecessor_finish_time() {
        let mut m = IdealManager::new();
        m.submit(&task(0, |b| b.output(0x100)), SimTime::ZERO);
        m.submit(&task(1, |b| b.input(0x100)), SimTime::ZERO);
        m.drain_events();
        let t_fin = SimTime::from_ps(5_000_000);
        let worker_free = m.finish(TaskId(0), t_fin);
        assert_eq!(worker_free, t_fin);
        let events = m.drain_events();
        assert!(events.contains(&ManagerEvent::Ready {
            task: TaskId(1),
            at: t_fin
        }));
        assert!(events.contains(&ManagerEvent::Retired {
            task: TaskId(0),
            at: t_fin
        }));
    }

    #[test]
    fn always_accepts_and_supports_taskwait_on() {
        let m = IdealManager::new();
        assert!(m.can_accept(SimTime::ZERO));
        assert!(m.supports_taskwait_on());
        assert_eq!(m.name(), "No Overhead");
        assert!(m.stats_summary().is_empty());
    }
}
