//! The event-driven multicore host simulation.
//!
//! One master thread replays the trace in program order (submitting tasks,
//! honouring `taskwait` / `taskwait on`, and stalling when the manager's task
//! pool back-pressures); a pool of identical worker cores executes ready tasks;
//! the manager under test decides *when* tasks become ready and retired.

use crate::manager::{ManagerEvent, TaskManager};
use crate::master::{MasterSm, MasterStep};
use crate::metrics::SimOutcome;
use crate::pool::WorkerPool;
use nexus_sim::{EngineKind, EventQueue, FxHashMap, SimDuration, SimTime};
use nexus_trace::{TaskDescriptor, TaskId, Trace};

/// Host machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostConfig {
    /// Number of worker cores (the master runs on its own core, as in the
    /// paper's testbench).
    pub workers: usize,
    /// Safety limit on simulation events (guards against model bugs producing
    /// infinite loops). The default is ample for every paper workload.
    pub max_events: u64,
    /// Event-queue engine driving the simulation (identical outcomes either
    /// way; see [`EngineKind`]).
    pub engine: EngineKind,
}

impl HostConfig {
    /// A host with `workers` worker cores.
    pub fn with_workers(workers: usize) -> Self {
        HostConfig {
            workers,
            max_events: u64::MAX,
            engine: EngineKind::default(),
        }
    }

    /// Selects the event-queue engine (outcomes are engine-independent).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }
}

impl Default for HostConfig {
    fn default() -> Self {
        Self::with_workers(32)
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// The master attempts to execute its next trace operation.
    MasterStep,
    /// A worker core finished executing a task.
    WorkerFinish(TaskId, usize),
    /// A worker core becomes available again (after its finish-notification
    /// cost).
    WorkerFree(usize),
    /// A ready notification becomes visible to the scheduler.
    ReadyVisible(TaskId),
    /// A retirement becomes visible (barrier / back-pressure bookkeeping).
    RetiredVisible(TaskId),
}

/// Runs `trace` on a simulated machine with `cfg.workers` worker cores managed
/// by `manager`. Panics if the simulation deadlocks (which would indicate a
/// model bug — the property tests guard against it).
pub fn simulate(trace: &Trace, manager: &mut dyn TaskManager, cfg: &HostConfig) -> SimOutcome {
    assert!(cfg.workers > 0, "need at least one worker core");
    let tasks: FxHashMap<TaskId, &TaskDescriptor> = trace.tasks().map(|t| (t.id, t)).collect();

    let mut queue: EventQueue<Event> = EventQueue::with_engine(cfg.engine);
    let mut mgr_events: Vec<ManagerEvent> = Vec::new();
    let mut pool = WorkerPool::new(cfg.workers);
    let mut master = MasterSm::new();
    let mut executed: u64 = 0;
    let mut makespan = SimTime::ZERO;
    let mut events_processed: u64 = 0;

    // Diagnostics.
    let mut idle_worker_area = SimDuration::ZERO; // worker·time with tasks outstanding
    let mut last_accounting = SimTime::ZERO;
    let mut outstanding_tasks: u64 = 0;

    queue.schedule(SimTime::ZERO, Event::MasterStep);

    macro_rules! drain_manager {
        ($now:expr) => {
            manager.drain_events_into(&mut mgr_events);
            for ev in mgr_events.drain(..) {
                match ev {
                    ManagerEvent::Ready { task, at } => {
                        queue.schedule(at.max($now), Event::ReadyVisible(task));
                    }
                    ManagerEvent::Retired { task, at } => {
                        queue.schedule(at.max($now), Event::RetiredVisible(task));
                    }
                }
            }
        };
    }

    while let Some(ev) = queue.pop() {
        let now = ev.time;
        makespan = makespan.max(now);
        events_processed += 1;
        if events_processed > cfg.max_events {
            panic!(
                "simulation exceeded {} events on {} / {}",
                cfg.max_events,
                trace.name,
                manager.name()
            );
        }

        // Integrate idle-worker area (workers idle while work is outstanding).
        let dt = now.saturating_since(last_accounting);
        if outstanding_tasks > 0 && pool.free() > 0 {
            idle_worker_area += dt * pool.free().min(outstanding_tasks as usize) as u64;
        }
        last_accounting = now;

        match ev.payload {
            Event::MasterStep => {
                // Execute exactly one trace operation (or block).
                match master.step(trace, now, manager.supports_taskwait_on()) {
                    MasterStep::Submit(task) => {
                        if !manager.can_accept(now) {
                            master.block_on_capacity(now);
                            continue;
                        }
                        let release = manager.submit(task, now);
                        drain_manager!(now);
                        master.commit_submit(task, now);
                        outstanding_tasks += 1;
                        queue.schedule(release.max(now), Event::MasterStep);
                    }
                    MasterStep::Compute(d) => {
                        queue.schedule(now + d, Event::MasterStep);
                    }
                    MasterStep::Continue => {
                        queue.schedule(now, Event::MasterStep);
                    }
                    MasterStep::Waiting | MasterStep::Done => {}
                }
            }

            Event::ReadyVisible(task) => {
                pool.enqueue(task);
                // Dispatch as many ready tasks as there are free workers.
                pool.dispatch(|next, worker, speed| {
                    let extra = manager.dispatch_cost(next, now);
                    drain_manager!(now);
                    let dur = tasks[&next].duration * 1000 / speed;
                    queue.schedule(now + extra + dur, Event::WorkerFinish(next, worker));
                });
            }

            Event::WorkerFinish(task, worker) => {
                executed += 1;
                let worker_free_at = manager.finish(task, now);
                drain_manager!(now);
                queue.schedule(worker_free_at.max(now), Event::WorkerFree(worker));
            }

            Event::WorkerFree(worker) => {
                pool.release(worker);
                pool.dispatch(|next, worker, speed| {
                    let extra = manager.dispatch_cost(next, now);
                    drain_manager!(now);
                    let dur = tasks[&next].duration * 1000 / speed;
                    queue.schedule(now + extra + dur, Event::WorkerFinish(next, worker));
                });
            }

            Event::RetiredVisible(task) => {
                outstanding_tasks -= 1;
                if master.on_retired(task, now) {
                    queue.schedule(now, Event::MasterStep);
                }
            }
        }
    }

    assert!(
        master.is_done(),
        "master never finished the trace ({}/{}; deadlock?)",
        trace.name,
        manager.name()
    );
    assert_eq!(
        executed as usize,
        tasks.len(),
        "not all tasks executed ({}/{})",
        trace.name,
        manager.name()
    );
    assert_eq!(
        master.retired_count() as usize,
        tasks.len(),
        "not all tasks retired ({}/{})",
        trace.name,
        manager.name()
    );

    SimOutcome {
        benchmark: trace.name.clone(),
        manager: manager.name(),
        workers: cfg.workers,
        makespan: makespan.since(SimTime::ZERO),
        total_work: trace.total_work(),
        tasks: executed,
        master_barrier_time: master.barrier_time(),
        master_backpressure_time: master.backpressure_time(),
        worker_idle_time: idle_worker_area,
        manager_stats: manager.stats_summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::IdealManager;
    use nexus_trace::generators::micro;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_us(v)
    }

    #[test]
    fn independent_tasks_scale_perfectly_under_the_ideal_manager() {
        let trace = micro::independent_tasks(64, 2, us(100));
        for workers in [1usize, 2, 4, 8, 16, 64] {
            let mut mgr = IdealManager::new();
            let out = simulate(&trace, &mut mgr, &HostConfig::with_workers(workers));
            let expected = 64.0 / (64usize.div_ceil(workers)) as f64;
            assert!(
                (out.speedup() - expected).abs() < 1e-6,
                "{workers} workers: {} vs {}",
                out.speedup(),
                expected
            );
        }
    }

    #[test]
    fn chain_never_exceeds_speedup_one() {
        let trace = micro::chain(40, us(50));
        let mut mgr = IdealManager::new();
        let out = simulate(&trace, &mut mgr, &HostConfig::with_workers(16));
        assert!((out.speedup() - 1.0).abs() < 1e-6, "{}", out.speedup());
        assert_eq!(out.tasks, 40);
    }

    #[test]
    fn wavefront_is_limited_by_its_critical_path() {
        let trace = micro::wavefront(8, 8, us(10));
        let mut mgr = IdealManager::new();
        let out = simulate(&trace, &mut mgr, &HostConfig::with_workers(64));
        // Critical path = 2*(rows-1) + cols tasks = 22 tasks -> 220 us.
        assert_eq!(out.makespan, us(220));
        let p = nexus_taskgraph::refgraph::ParallelismProfile::of(&trace);
        assert!((out.speedup() - p.average_parallelism()).abs() < 1e-6);
    }

    #[test]
    fn taskwait_blocks_the_master_until_all_retired() {
        let trace = micro::independent_tasks(4, 1, us(100));
        // The trace ends with a taskwait; with 1 worker the makespan is 400 us.
        let mut mgr = IdealManager::new();
        let out = simulate(&trace, &mut mgr, &HostConfig::with_workers(1));
        assert_eq!(out.makespan, us(400));
        assert!(out.master_barrier_time > SimDuration::ZERO);
    }

    #[test]
    fn single_worker_speedup_is_about_one_for_every_micro_pattern() {
        for trace in [
            micro::five_independent_tasks(),
            micro::fork_join(8, us(20)),
            micro::wavefront(5, 5, us(7)),
        ] {
            let mut mgr = IdealManager::new();
            let out = simulate(&trace, &mut mgr, &HostConfig::with_workers(1));
            assert!((out.speedup() - 1.0).abs() < 1e-6, "{}", trace.name);
        }
    }
}
