//! Parameter sweeps: speedup-vs-core-count curves.
//!
//! The evaluation figures of the paper are families of speedup curves over the
//! core count (1–256 cores for the hardware managers, 1–32 for Nanos, which is
//! bounded by the real machine used to measure it). [`speedup_curve`] runs one
//! trace under one manager family over a list of core counts and returns the
//! curve; the benchmark harness prints these as the rows/series of
//! Figs. 7, 8 and 9 and derives Table IV from their maxima.

use crate::driver::{simulate, HostConfig};
use crate::manager::TaskManager;
use crate::metrics::SimOutcome;
use nexus_trace::Trace;
use serde::{Deserialize, Serialize};

/// The core counts used throughout the paper's figures.
pub const PAPER_CORE_COUNTS: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Core counts available to the software runtime (the 40-core Xeon E7-4870;
/// the paper plots Nanos up to 32 cores).
pub const NANOS_CORE_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// One point of a speedup curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Worker-core count.
    pub cores: usize,
    /// Measured speedup vs. the single-core ideal execution time.
    pub speedup: f64,
    /// The full simulation outcome (for diagnostics).
    pub outcome: SimOutcome,
}

/// A speedup curve for one (benchmark, manager) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupCurve {
    /// Benchmark name.
    pub benchmark: String,
    /// Manager name.
    pub manager: String,
    /// Points in increasing core order.
    pub points: Vec<SpeedupPoint>,
}

impl SpeedupCurve {
    /// The maximum speedup over the curve (the Table IV statistic).
    pub fn max_speedup(&self) -> f64 {
        self.points.iter().map(|p| p.speedup).fold(0.0, f64::max)
    }

    /// The speedup at a specific core count, if simulated.
    pub fn at(&self, cores: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.cores == cores)
            .map(|p| p.speedup)
    }

    /// Renders the curve as a compact single-line series (used by the
    /// figure-regeneration benches).
    pub fn series(&self) -> String {
        let pts: Vec<String> = self
            .points
            .iter()
            .map(|p| format!("{}:{:.1}", p.cores, p.speedup))
            .collect();
        format!(
            "{:<24} {:<20} {}",
            self.benchmark,
            self.manager,
            pts.join("  ")
        )
    }
}

/// Runs `trace` for every core count in `cores`, constructing a fresh manager
/// for each run via `make_manager` (which receives the core count, letting
/// software runtimes model per-thread contention).
pub fn speedup_curve<M, F>(trace: &Trace, cores: &[usize], mut make_manager: F) -> SpeedupCurve
where
    M: TaskManager,
    F: FnMut(usize) -> M,
{
    let mut points = Vec::with_capacity(cores.len());
    let mut manager_name = String::new();
    for &n in cores {
        let mut manager = make_manager(n);
        manager_name = manager.name();
        let outcome = simulate(trace, &mut manager, &HostConfig::with_workers(n));
        points.push(SpeedupPoint {
            cores: n,
            speedup: outcome.speedup(),
            outcome,
        });
    }
    SpeedupCurve {
        benchmark: trace.name.clone(),
        manager: manager_name,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::IdealManager;
    use nexus_sim::SimDuration;
    use nexus_trace::generators::micro;

    #[test]
    fn ideal_curve_is_monotone_and_saturates_at_available_parallelism() {
        let trace = micro::independent_tasks(32, 1, SimDuration::from_us(100));
        let curve = speedup_curve(&trace, &[1, 2, 4, 8, 16, 32, 64], |_| IdealManager::new());
        assert_eq!(curve.manager, "No Overhead");
        for w in curve.points.windows(2) {
            assert!(w[1].speedup >= w[0].speedup - 1e-9, "curve not monotone");
        }
        assert!((curve.max_speedup() - 32.0).abs() < 1e-6);
        assert_eq!(curve.at(4), Some(4.0));
        assert!(curve.at(3).is_none());
        assert!(curve.series().contains("No Overhead"));
    }
}
