//! The master-thread state machine, shared by the single-node host driver and
//! the multi-node cluster driver.
//!
//! Both drivers replay a trace from one master thread: execute operations in
//! program order, block on `taskwait` / `taskwait on` until the relevant
//! retirements are visible, and (in the host driver) block on task-pool
//! back-pressure. The two copies of that logic differed only in
//!
//! * **back-pressure** — the host master blocks synchronously when the
//!   manager's task pool is full ([`MasterSm::block_on_capacity`]); the
//!   cluster master forwards descriptors asynchronously and never blocks on
//!   capacity (each node's input processor holds them instead), so it simply
//!   never calls it, and
//! * **retirement visibility** — the host master sees retirements directly
//!   from the manager's event stream; the cluster master sees them when the
//!   notification message crosses the interconnect. Both feed
//!   [`MasterSm::on_retired`], only *when* differs.
//!
//! [`MasterSm`] owns the operation cursor, the submitted/retired census, the
//! `last_writer` map that gives `taskwait on` its target, and the
//! barrier/back-pressure time bookkeeping. The drivers own everything timing-
//! and transport-related: what submitting a task costs, and when a retirement
//! becomes visible.

use nexus_sim::{FxHashMap, FxHashSet};
use nexus_sim::{SimDuration, SimTime};
use nexus_trace::{TaskDescriptor, TaskId, Trace, TraceOp};

/// What the master thread is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Executing trace operations (a master-step event is pending).
    Running,
    /// Waiting for every submitted task (`None`) or one task (`Some`) to
    /// retire, as visible to the master.
    WaitingBarrier(Option<TaskId>),
    /// Waiting for the manager to accept a new submission (task pool full).
    WaitingCapacity,
    /// Trace fully processed.
    Done,
}

/// What the driver must do next, as decided by [`MasterSm::step`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MasterStep<'a> {
    /// Submit this task. The driver must either complete the submission and
    /// call [`MasterSm::commit_submit`], or call
    /// [`MasterSm::block_on_capacity`] if the manager back-pressures. The
    /// operation cursor does not advance until the commit.
    Submit(&'a TaskDescriptor),
    /// Serial master-side compute: schedule the next step after this long.
    Compute(SimDuration),
    /// A barrier was already satisfied: schedule the next step immediately.
    Continue,
    /// The master entered a barrier wait; [`MasterSm::on_retired`] resumes it.
    Waiting,
    /// The trace is fully processed.
    Done,
}

/// The master-thread state machine (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct MasterSm {
    state: State,
    op_idx: usize,
    submitted: u64,
    retired: FxHashSet<TaskId>,
    last_writer: FxHashMap<u64, TaskId>,
    barrier_since: Option<SimTime>,
    barrier_time: SimDuration,
    backpressure_since: Option<SimTime>,
    backpressure_time: SimDuration,
}

impl Default for MasterSm {
    fn default() -> Self {
        Self::new()
    }
}

impl MasterSm {
    /// A master at the start of its trace.
    pub fn new() -> Self {
        MasterSm {
            state: State::Running,
            op_idx: 0,
            submitted: 0,
            retired: FxHashSet::default(),
            last_writer: FxHashMap::default(),
            barrier_since: None,
            barrier_time: SimDuration::ZERO,
            backpressure_since: None,
            backpressure_time: SimDuration::ZERO,
        }
    }

    /// Executes the master's next trace operation at `now` and returns what
    /// the driver must do. Barrier operations are resolved internally
    /// (`supports_taskwait_on` controls whether `taskwait on` escalates to a
    /// full `taskwait`, as it must for managers without support).
    pub fn step<'a>(
        &mut self,
        trace: &'a Trace,
        now: SimTime,
        supports_taskwait_on: bool,
    ) -> MasterStep<'a> {
        if self.state == State::Done {
            return MasterStep::Done;
        }
        self.state = State::Running;
        match trace.ops.get(self.op_idx) {
            None => {
                self.state = State::Done;
                MasterStep::Done
            }
            Some(TraceOp::Submit(task)) => MasterStep::Submit(task),
            Some(TraceOp::Taskwait) => {
                if self.all_retired() {
                    self.op_idx += 1;
                    MasterStep::Continue
                } else {
                    self.state = State::WaitingBarrier(None);
                    self.barrier_since.get_or_insert(now);
                    MasterStep::Waiting
                }
            }
            Some(TraceOp::TaskwaitOn(addr)) => {
                let target = if supports_taskwait_on {
                    self.last_writer.get(addr).copied()
                } else {
                    None // escalate to a full taskwait (Nexus++ behaviour)
                };
                let satisfied = match target {
                    Some(t) => self.retired.contains(&t),
                    None => supports_taskwait_on || self.all_retired(),
                };
                if satisfied {
                    self.op_idx += 1;
                    MasterStep::Continue
                } else {
                    self.state = State::WaitingBarrier(target);
                    self.barrier_since.get_or_insert(now);
                    MasterStep::Waiting
                }
            }
            Some(TraceOp::MasterCompute(d)) => {
                self.op_idx += 1;
                MasterStep::Compute(*d)
            }
        }
    }

    /// The driver completed the submission returned by [`MasterSm::step`]:
    /// record it, close any back-pressure interval, and advance the cursor.
    pub fn commit_submit(&mut self, task: &TaskDescriptor, now: SimTime) {
        if let Some(since) = self.backpressure_since.take() {
            self.backpressure_time += now.since(since);
        }
        self.submitted += 1;
        for p in task.outputs() {
            self.last_writer.insert(p.addr, task.id);
        }
        self.op_idx += 1;
    }

    /// The manager back-pressured the submission returned by
    /// [`MasterSm::step`]: the master blocks (cursor unchanged) until a
    /// retirement wakes it via [`MasterSm::on_retired`].
    pub fn block_on_capacity(&mut self, now: SimTime) {
        self.state = State::WaitingCapacity;
        self.backpressure_since.get_or_insert(now);
    }

    /// A retirement became visible to the master at `now`. Returns `true` if
    /// the master was blocked and must be rescheduled (a master-step event at
    /// `now`).
    pub fn on_retired(&mut self, task: TaskId, now: SimTime) -> bool {
        self.retired.insert(task);
        match self.state {
            State::WaitingCapacity => {
                self.state = State::Running;
                true
            }
            State::WaitingBarrier(target) => {
                let satisfied = match target {
                    Some(t) => self.retired.contains(&t),
                    None => self.all_retired(),
                };
                if satisfied {
                    if let Some(since) = self.barrier_since.take() {
                        self.barrier_time += now.since(since);
                    }
                    self.state = State::Running;
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// True once the whole trace has been processed.
    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }

    /// Tasks submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Retirements visible to the master so far.
    pub fn retired_count(&self) -> u64 {
        self.retired.len() as u64
    }

    /// True if a specific task's retirement is visible to the master.
    pub fn has_retired(&self, task: TaskId) -> bool {
        self.retired.contains(&task)
    }

    /// The master's final last-writer table — `(address, last writing task)`
    /// pairs sorted by address. A pure function of the committed submissions,
    /// which makes it a cheap cross-check that two drivers (e.g. the event
    /// simulator and the threaded runtime) committed the same submissions in
    /// the same program order.
    pub fn last_writer_table(&self) -> Vec<(u64, TaskId)> {
        let mut table: Vec<(u64, TaskId)> =
            self.last_writer.iter().map(|(&a, &t)| (a, t)).collect();
        table.sort_unstable_by_key(|&(a, _)| a);
        table
    }

    /// Total time the master spent blocked on barriers.
    pub fn barrier_time(&self) -> SimDuration {
        self.barrier_time
    }

    /// Total time the master spent blocked on task-pool back-pressure.
    pub fn backpressure_time(&self) -> SimDuration {
        self.backpressure_time
    }

    fn all_retired(&self) -> bool {
        self.retired.len() as u64 == self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_us(v)
    }

    fn t(v: u64) -> SimTime {
        SimTime::ZERO + us(v)
    }

    fn trace() -> Trace {
        let mut b = nexus_trace::trace::TraceBuilder::new("sm-unit");
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .output(0x100)
                .duration(us(10))
                .build()
        });
        b.taskwait_on(0x100);
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .input(0x100)
                .output(0x200)
                .duration(us(10))
                .build()
        });
        b.master_compute(us(5));
        b.taskwait();
        b.finish()
    }

    #[test]
    fn replays_a_trace_in_order_with_barrier_bookkeeping() {
        let trace = trace();
        let mut sm = MasterSm::new();

        // Submit T0.
        let MasterStep::Submit(task0) = sm.step(&trace, t(0), true) else {
            panic!("expected a submit")
        };
        let id0 = task0.id;
        sm.commit_submit(&task0.clone(), t(0));

        // `taskwait on(0x100)` targets T0, which has not retired.
        assert_eq!(sm.step(&trace, t(1), true), MasterStep::Waiting);
        assert!(sm.on_retired(id0, t(11)), "barrier must release");
        assert_eq!(sm.barrier_time(), us(10));

        // The barrier is satisfied on re-step; then T1 is submitted.
        assert_eq!(sm.step(&trace, t(11), true), MasterStep::Continue);
        let MasterStep::Submit(task1) = sm.step(&trace, t(11), true) else {
            panic!("expected a submit")
        };
        let id1 = task1.id;
        sm.commit_submit(&task1.clone(), t(11));

        // Serial compute, then the final taskwait blocks until T1 retires.
        assert_eq!(sm.step(&trace, t(11), true), MasterStep::Compute(us(5)));
        assert_eq!(sm.step(&trace, t(16), true), MasterStep::Waiting);
        assert!(sm.on_retired(id1, t(30)));
        assert_eq!(sm.step(&trace, t(30), true), MasterStep::Continue);
        assert_eq!(sm.step(&trace, t(30), true), MasterStep::Done);
        assert!(sm.is_done());
        assert_eq!(sm.submitted(), 2);
        assert_eq!(sm.retired_count(), 2);
        assert_eq!(sm.barrier_time(), us(10) + us(14));
        assert_eq!(sm.backpressure_time(), SimDuration::ZERO);
    }

    #[test]
    fn taskwait_on_escalates_without_manager_support() {
        let trace = trace();
        let mut sm = MasterSm::new();
        let MasterStep::Submit(task0) = sm.step(&trace, t(0), false) else {
            panic!("expected a submit")
        };
        let task0 = task0.clone();
        sm.commit_submit(&task0, t(0));
        // Without `taskwait on` support the barrier waits for *all* tasks.
        assert_eq!(sm.step(&trace, t(1), false), MasterStep::Waiting);
        assert!(sm.on_retired(task0.id, t(20)));
        assert_eq!(sm.step(&trace, t(20), false), MasterStep::Continue);
    }

    #[test]
    fn capacity_blocking_accumulates_backpressure_time() {
        let trace = trace();
        let mut sm = MasterSm::new();
        let MasterStep::Submit(_) = sm.step(&trace, t(0), true) else {
            panic!("expected a submit")
        };
        sm.block_on_capacity(t(0));
        // A retirement wakes the master; the same submit is offered again.
        assert!(sm.on_retired(TaskId(99), t(7)));
        let MasterStep::Submit(task) = sm.step(&trace, t(7), true) else {
            panic!("submit must be re-offered")
        };
        sm.commit_submit(&task.clone(), t(7));
        assert_eq!(sm.backpressure_time(), us(7));
        assert_eq!(sm.submitted(), 1);
    }

    #[test]
    fn empty_trace_is_done_immediately() {
        let trace = Trace::new("empty");
        let mut sm = MasterSm::new();
        assert_eq!(sm.step(&trace, t(0), true), MasterStep::Done);
        assert!(sm.is_done());
        assert_eq!(sm.step(&trace, t(1), true), MasterStep::Done);
    }
}
