//! Trace statistics — the columns of Table II and Table III.

use crate::trace::Trace;
use nexus_sim::stats::OnlineStats;
use nexus_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Summary statistics of a trace, matching the columns the paper reports for
/// its benchmarks ("# tasks", "total work (ms)", "avg task size (µs)",
/// "# deps") plus a few extra columns useful for the harness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceStats {
    /// Benchmark name.
    pub name: String,
    /// Number of tasks in the trace.
    pub tasks: u64,
    /// Sum of all task durations, in milliseconds.
    pub total_work_ms: f64,
    /// Average task duration, in microseconds.
    pub avg_task_us: f64,
    /// Median task duration, in microseconds (not in the paper's table but
    /// useful because several benchmarks have heavy-tailed distributions).
    pub median_task_us: f64,
    /// Minimum number of parameters over all tasks.
    pub min_params: usize,
    /// Maximum number of parameters over all tasks.
    pub max_params: usize,
    /// Average number of parameters per task.
    pub avg_params: f64,
    /// Number of `taskwait` barriers.
    pub taskwaits: u64,
    /// Number of `taskwait on` barriers.
    pub taskwait_ons: u64,
}

impl TraceStats {
    /// Computes the statistics of a trace.
    pub fn of(trace: &Trace) -> Self {
        let mut dur = OnlineStats::new();
        let mut params = OnlineStats::new();
        let mut min_params = usize::MAX;
        let mut max_params = 0usize;
        let mut durations_us: Vec<f64> = Vec::new();
        for t in trace.tasks() {
            dur.push(t.duration.as_us_f64());
            durations_us.push(t.duration.as_us_f64());
            params.push(t.num_params() as f64);
            min_params = min_params.min(t.num_params());
            max_params = max_params.max(t.num_params());
        }
        if durations_us.is_empty() {
            min_params = 0;
        }
        let median_task_us = if durations_us.is_empty() {
            0.0
        } else {
            durations_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
            durations_us[durations_us.len() / 2]
        };
        let taskwait_ons = trace.taskwait_on_count() as u64;
        TraceStats {
            name: trace.name.clone(),
            tasks: dur.count(),
            total_work_ms: trace.total_work().as_ms_f64(),
            avg_task_us: dur.mean(),
            median_task_us,
            min_params,
            max_params,
            avg_params: params.mean(),
            taskwaits: trace.barrier_count() as u64 - taskwait_ons,
            taskwait_ons,
        }
    }

    /// The "# deps" column of Table II, formatted like the paper
    /// (single number or `min-max` range).
    pub fn deps_column(&self) -> String {
        if self.min_params == self.max_params {
            format!("{}", self.min_params)
        } else {
            format!("{}-{}", self.min_params, self.max_params)
        }
    }

    /// Average task duration.
    pub fn avg_task(&self) -> SimDuration {
        SimDuration::from_us_f64(self.avg_task_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskDescriptor;
    use crate::trace::TraceBuilder;

    #[test]
    fn stats_of_a_small_trace() {
        let mut b = TraceBuilder::new("mini");
        for i in 0..4u64 {
            b.submit_with(|id| {
                TaskDescriptor::builder(id.0)
                    .input(0x100)
                    .inout(0x200 + i * 64)
                    .duration_us(10.0 * (i + 1) as f64)
                    .build()
            });
        }
        b.taskwait();
        b.taskwait_on(0x200);
        let trace = b.finish();
        let s = TraceStats::of(&trace);
        assert_eq!(s.tasks, 4);
        assert!((s.total_work_ms - 0.1).abs() < 1e-9);
        assert!((s.avg_task_us - 25.0).abs() < 1e-9);
        assert_eq!(s.min_params, 2);
        assert_eq!(s.max_params, 2);
        assert_eq!(s.deps_column(), "2");
        assert_eq!(s.taskwaits, 1);
        assert_eq!(s.taskwait_ons, 1);
        assert!((s.avg_params - 2.0).abs() < 1e-12);
        assert_eq!(s.median_task_us, 30.0);
    }

    #[test]
    fn deps_column_shows_range() {
        let mut b = TraceBuilder::new("range");
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .inout(1)
                .duration_us(1.0)
                .build()
        });
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .input(1)
                .input(2)
                .inout(3)
                .duration_us(1.0)
                .build()
        });
        let s = TraceStats::of(&b.finish());
        assert_eq!(s.deps_column(), "1-3");
    }

    #[test]
    fn empty_trace_is_benign() {
        let s = TraceStats::of(&Trace::new("empty"));
        assert_eq!(s.tasks, 0);
        assert_eq!(s.total_work_ms, 0.0);
        assert_eq!(s.min_params, 0);
        assert_eq!(s.max_params, 0);
    }
}
