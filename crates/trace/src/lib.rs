//! # nexus-trace — task model and workload generators
//!
//! The Nexus# evaluation is trace-driven: the testbench replays a stream of task
//! submissions (each task carrying its `in`/`out`/`inout` memory footprint and its
//! measured execution time) plus the synchronization pragmas (`taskwait`,
//! `taskwait on`). This crate provides:
//!
//! * the task and trace data model ([`TaskDescriptor`], [`Trace`], [`TraceOp`]),
//! * deterministic synthetic generators for every workload in the paper's
//!   evaluation section ([`generators`]): the Starbench benchmarks *c-ray*,
//!   *rot-cc*, *streamcluster*, *h264dec* (four task granularities), the OmpSs
//!   *sparselu* kernel, the *Gaussian elimination* micro-benchmark of Fig. 6 /
//!   Table III, and the micro traces used for the pipeline cycle studies,
//! * trace statistics reproducing the columns of Table II and Table III
//!   ([`stats`]).
//!
//! The real traces were collected on a 40-core Xeon E7-4870 and are not
//! available; the generators reproduce each benchmark's *dependency pattern*,
//! *parameter counts* and *duration distribution* as described in §V-A of the
//! paper (see DESIGN.md for the substitution record).

#![warn(missing_docs)]

pub mod addr;
pub mod arrivals;
pub mod generators;
pub mod stats;
pub mod task;
pub mod trace;

pub use addr::AddrRegion;
pub use arrivals::ArrivalOverlay;
pub use generators::{standard_suite, Benchmark};
pub use stats::TraceStats;
pub use task::{Direction, FunctionId, TaskDescriptor, TaskId, TaskParam};
pub use trace::{Trace, TraceOp};

/// Convenience prelude.
pub mod prelude {
    pub use crate::addr::AddrRegion;
    pub use crate::arrivals::ArrivalOverlay;
    pub use crate::generators::{standard_suite, Benchmark};
    pub use crate::stats::TraceStats;
    pub use crate::task::{Direction, FunctionId, TaskDescriptor, TaskId, TaskParam};
    pub use crate::trace::{Trace, TraceOp};
}
