//! Traces: ordered streams of runtime operations replayed by the testbench.
//!
//! A trace is what the master thread of the simulated host executes: submit a
//! task, hit a `taskwait`, hit a `taskwait on(addr)`, or spend some time in
//! serial (non-task) application code. This mirrors §V-B of the paper: "The test
//! bench simulates the RTS. It submits new tasks to Nexus#, receives ready task
//! information from it, schedules ready tasks to worker cores and simulates
//! their execution, and finally notifies Nexus# of finished tasks."

use crate::task::{TaskDescriptor, TaskId};
use nexus_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// One operation performed by the master thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceOp {
    /// Submit a task to the task manager.
    Submit(TaskDescriptor),
    /// `#pragma omp taskwait`: block until every task submitted so far has
    /// finished and been retired by the manager.
    Taskwait,
    /// `#pragma omp taskwait on(addr)`: block until the most recent producer of
    /// `addr` has finished. Nexus++ does not support this pragma and escalates
    /// it to a full [`TraceOp::Taskwait`] (§III / §VI of the paper).
    TaskwaitOn(u64),
    /// Serial master-side computation between task submissions (time spent in
    /// non-task application code).
    MasterCompute(SimDuration),
}

impl TraceOp {
    /// Returns the task descriptor if this is a submission.
    pub fn as_submit(&self) -> Option<&TaskDescriptor> {
        match self {
            TraceOp::Submit(t) => Some(t),
            _ => None,
        }
    }

    /// True for `Taskwait` or `TaskwaitOn`.
    pub fn is_barrier(&self) -> bool {
        matches!(self, TraceOp::Taskwait | TraceOp::TaskwaitOn(_))
    }
}

/// A complete workload trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable benchmark name (e.g. `"h264dec-1x1-10f"`).
    pub name: String,
    /// The operations in master program order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Appends an operation.
    pub fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }

    /// Appends a task submission.
    pub fn submit(&mut self, task: TaskDescriptor) {
        self.ops.push(TraceOp::Submit(task));
    }

    /// Appends a `taskwait`.
    pub fn taskwait(&mut self) {
        self.ops.push(TraceOp::Taskwait);
    }

    /// Appends a `taskwait on(addr)`.
    pub fn taskwait_on(&mut self, addr: u64) {
        self.ops.push(TraceOp::TaskwaitOn(addr));
    }

    /// Appends serial master computation.
    pub fn master_compute(&mut self, d: SimDuration) {
        self.ops.push(TraceOp::MasterCompute(d));
    }

    /// Number of task submissions in the trace.
    pub fn task_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::Submit(_)))
            .count()
    }

    /// Number of barrier operations (`taskwait` + `taskwait on`).
    pub fn barrier_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_barrier()).count()
    }

    /// Number of `taskwait on` operations.
    pub fn taskwait_on_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::TaskwaitOn(_)))
            .count()
    }

    /// Sum of all task durations ("total work" in Table II).
    pub fn total_work(&self) -> SimDuration {
        self.tasks().map(|t| t.duration).sum()
    }

    /// Sum of master-side serial compute in the trace.
    pub fn total_master_compute(&self) -> SimDuration {
        self.ops
            .iter()
            .filter_map(|op| match op {
                TraceOp::MasterCompute(d) => Some(*d),
                _ => None,
            })
            .sum()
    }

    /// Iterator over submitted task descriptors in submission order.
    pub fn tasks(&self) -> impl Iterator<Item = &TaskDescriptor> {
        self.ops.iter().filter_map(|op| op.as_submit())
    }

    /// Looks up a task descriptor by id (linear scan; intended for tests).
    pub fn task(&self, id: TaskId) -> Option<&TaskDescriptor> {
        self.tasks().find(|t| t.id == id)
    }

    /// Validates internal consistency: task ids are unique and strictly
    /// increasing in submission order, every task has at least one parameter
    /// and a non-negative duration. Returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        let mut last: Option<u64> = None;
        for t in self.tasks() {
            if t.params.is_empty() {
                return Err(format!("{} has no parameters", t.id));
            }
            if let Some(prev) = last {
                if t.id.0 <= prev {
                    return Err(format!(
                        "task ids must be strictly increasing: {} after T{}",
                        t.id, prev
                    ));
                }
            }
            last = Some(t.id.0);
        }
        Ok(())
    }
}

/// Incremental builder that assigns task ids in submission order.
#[derive(Debug)]
pub struct TraceBuilder {
    trace: Trace,
    next_id: u64,
}

impl TraceBuilder {
    /// Creates a builder for a named trace.
    pub fn new(name: impl Into<String>) -> Self {
        TraceBuilder {
            trace: Trace::new(name),
            next_id: 0,
        }
    }

    /// Next task id that will be assigned.
    pub fn next_id(&self) -> TaskId {
        TaskId(self.next_id)
    }

    /// Submits a task built from a closure receiving the assigned id.
    pub fn submit_with(&mut self, f: impl FnOnce(TaskId) -> TaskDescriptor) -> TaskId {
        let id = TaskId(self.next_id);
        self.next_id += 1;
        let task = f(id);
        debug_assert_eq!(task.id, id, "builder closure must keep the assigned id");
        self.trace.submit(task);
        id
    }

    /// Appends a `taskwait`.
    pub fn taskwait(&mut self) {
        self.trace.taskwait();
    }

    /// Appends a `taskwait on(addr)`.
    pub fn taskwait_on(&mut self, addr: u64) {
        self.trace.taskwait_on(addr);
    }

    /// Appends serial master compute time.
    pub fn master_compute(&mut self, d: SimDuration) {
        self.trace.master_compute(d);
    }

    /// Finalizes the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskDescriptor;

    fn simple_task(id: TaskId, us: f64) -> TaskDescriptor {
        TaskDescriptor::builder(id.0)
            .inout(0x1000 + id.0 * 64)
            .duration_us(us)
            .build()
    }

    #[test]
    fn counting_and_total_work() {
        let mut b = TraceBuilder::new("unit");
        b.submit_with(|id| simple_task(id, 10.0));
        b.submit_with(|id| simple_task(id, 20.0));
        b.taskwait();
        b.submit_with(|id| simple_task(id, 30.0));
        b.taskwait_on(0x1000);
        b.master_compute(SimDuration::from_us(5));
        let t = b.finish();

        assert_eq!(t.task_count(), 3);
        assert_eq!(t.barrier_count(), 2);
        assert_eq!(t.taskwait_on_count(), 1);
        assert_eq!(t.total_work(), SimDuration::from_us(60));
        assert_eq!(t.total_master_compute(), SimDuration::from_us(5));
        assert!(t.validate().is_ok());
        assert_eq!(
            t.task(TaskId(1)).unwrap().duration,
            SimDuration::from_us(20)
        );
        assert!(t.task(TaskId(99)).is_none());
    }

    #[test]
    fn builder_assigns_monotone_ids() {
        let mut b = TraceBuilder::new("ids");
        assert_eq!(b.next_id(), TaskId(0));
        let a = b.submit_with(|id| simple_task(id, 1.0));
        let c = b.submit_with(|id| simple_task(id, 1.0));
        assert_eq!(a, TaskId(0));
        assert_eq!(c, TaskId(1));
        assert_eq!(b.next_id(), TaskId(2));
    }

    #[test]
    fn validate_rejects_empty_param_list() {
        let mut t = Trace::new("bad");
        t.submit(TaskDescriptor::builder(0).duration_us(1.0).build());
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_non_monotone_ids() {
        let mut t = Trace::new("bad");
        t.submit(simple_task(TaskId(5), 1.0));
        t.submit(simple_task(TaskId(3), 1.0));
        let err = t.validate().unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
    }

    #[test]
    fn trace_op_helpers() {
        let op = TraceOp::Submit(simple_task(TaskId(0), 1.0));
        assert!(op.as_submit().is_some());
        assert!(!op.is_barrier());
        assert!(TraceOp::Taskwait.is_barrier());
        assert!(TraceOp::TaskwaitOn(5).is_barrier());
        assert!(TraceOp::Taskwait.as_submit().is_none());
    }
}
