//! streamcluster: online k-median clustering from the Starbench suite.
//!
//! "streamcluster is a streaming data analysis kernel with fork-join-style
//! parallelism. It consists of a chain of groups of about 400 tasks followed by
//! a taskwait." (§V-A). Table II: 652 776 tasks, 237 908 ms total work, 364 µs
//! average task, 1–3 deps.
//!
//! The per-task duration distribution is strongly bimodal: most tasks are short
//! distance-evaluation kernels while a small fraction are long gain-evaluation /
//! re-clustering tasks. The mean matches the paper's 364 µs, and the heavy tail
//! is what limits even the *ideal* speedup of this benchmark to ≈40× (the
//! longest task of a group dominates the group's critical path), reproducing
//! the saturation visible in Fig. 8.

use crate::addr::AddrRegion;
use crate::task::TaskDescriptor;
use crate::trace::{Trace, TraceBuilder};
use nexus_sim::SimRng;

/// Number of fork-join groups in the full-size trace.
pub const GROUPS: u64 = 1632;
/// Tasks per group ("groups of about 400 tasks").
pub const TASKS_PER_GROUP: u64 = 400;
/// Fraction of long (gain-evaluation) tasks per group.
pub const LONG_TASK_FRACTION: f64 = 0.10;
/// Duration of the short distance-evaluation tasks (µs, centre of jitter band).
pub const SHORT_TASK_US: f64 = 30.0;
/// Duration of the long gain-evaluation tasks (µs, centre of jitter band),
/// calibrated so the mean task size lands on the paper's 364 µs.
pub const LONG_TASK_US: f64 = 3370.0;

/// Generates the streamcluster trace. `scale` shrinks the number of groups.
pub fn generate(seed: u64, scale: f64) -> Trace {
    let groups = ((GROUPS as f64 * scale).round() as u64).max(1);
    let mut rng = SimRng::new(seed ^ 0x57C1_0573);
    let mut b = TraceBuilder::new("streamcluster");

    // Shared per-group data (the candidate centre set), per-block working
    // buffers reused across groups (reuse creates the 1-3 dep range and
    // cross-group write-after-write chains on the block buffers), and the
    // read-only point coordinates that the long gain-evaluation tasks scan.
    let group_state = AddrRegion::benchmark_array(3);
    let blocks = AddrRegion::benchmark_array(4);
    let points = AddrRegion::benchmark_array(5);

    for g in 0..groups {
        let group_addr = group_state.addr(g % 64);
        for i in 0..TASKS_PER_GROUP {
            let long = rng.chance(LONG_TASK_FRACTION);
            let us = if long {
                LONG_TASK_US * rng.uniform(0.85, 1.15)
            } else {
                SHORT_TASK_US * rng.uniform(0.5, 1.5)
            };
            let block_addr = blocks.addr(i);
            b.submit_with(|id| {
                let mut t = TaskDescriptor::builder(id.0)
                    .function(if long { 1 } else { 0 })
                    .inout(block_addr);
                // Most tasks also read the shared group state; a few are
                // independent local kernels (1 parameter), and the long tasks
                // additionally read a neighbour block (3 parameters).
                if i % 16 != 0 {
                    t = t.input(group_addr);
                }
                if long {
                    // Gain evaluation additionally scans a slab of the
                    // (read-only) input points; tasks within a group stay
                    // independent of each other.
                    t = t.input(points.addr(i % 64));
                }
                t.duration_us(us).build()
            });
        }
        b.taskwait();
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn full_trace_matches_table2_row() {
        let t = generate(13, 1.0);
        let s = TraceStats::of(&t);
        assert_eq!(s.tasks, GROUPS * TASKS_PER_GROUP);
        // Within 1% of the paper's 652776 tasks.
        assert!(
            (s.tasks as f64 - 652_776.0).abs() / 652_776.0 < 0.01,
            "{}",
            s.tasks
        );
        assert_eq!(s.deps_column(), "1-3");
        assert!(
            (s.avg_task_us - 364.0).abs() / 364.0 < 0.08,
            "avg {}",
            s.avg_task_us
        );
        assert!(
            (s.total_work_ms - 237_908.0).abs() / 237_908.0 < 0.10,
            "{}",
            s.total_work_ms
        );
        assert_eq!(s.taskwaits, GROUPS);
        t.validate().unwrap();
    }

    #[test]
    fn duration_distribution_is_heavy_tailed() {
        let t = generate(2, 0.02);
        let s = TraceStats::of(&t);
        // Median well below mean => heavy tail.
        assert!(
            s.median_task_us < s.avg_task_us / 3.0,
            "median {} mean {}",
            s.median_task_us,
            s.avg_task_us
        );
    }

    #[test]
    fn groups_are_separated_by_taskwaits() {
        let t = generate(2, 0.005);
        let mut since_last_wait = 0usize;
        for op in &t.ops {
            match op {
                crate::trace::TraceOp::Submit(_) => since_last_wait += 1,
                crate::trace::TraceOp::Taskwait => {
                    assert_eq!(since_last_wait as u64, TASKS_PER_GROUP);
                    since_last_wait = 0;
                }
                _ => {}
            }
        }
        assert_eq!(since_last_wait, 0, "trace must end with a taskwait");
    }
}
