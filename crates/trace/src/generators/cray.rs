//! c-ray: ray-tracing benchmark from the Starbench suite.
//!
//! "c-ray and rot-cc have simple dependency patterns, with tasks working on each
//! line of the input image independently. For c-ray, there is only one task per
//! line, which means that all tasks are independent. … c-ray is a best case for
//! this type of runtime, as it has long tasks and ample parallelism" (§V-A).
//!
//! Table II: 1200 tasks, 7381 ms of total work, 6151 µs average task, 1 dep.

use crate::addr::AddrRegion;
use crate::task::TaskDescriptor;
use crate::trace::{Trace, TraceBuilder};
use nexus_sim::SimRng;

/// Number of image lines (= tasks) in the full-size trace (Table II).
pub const LINES: u64 = 1200;
/// Average task duration in microseconds (Table II).
pub const AVG_TASK_US: f64 = 6151.0;

/// Generates the c-ray trace. `scale` shrinks the number of image lines.
pub fn generate(seed: u64, scale: f64) -> Trace {
    let lines = ((LINES as f64 * scale).round() as u64).max(1);
    let mut rng = SimRng::new(seed ^ 0xC0FF_EE00);
    let mut b = TraceBuilder::new("c-ray");
    let out_lines = AddrRegion::benchmark_array(0);

    for line in 0..lines {
        // Ray tracing time varies moderately per line (scene-dependent);
        // +/- 15% uniform jitter around the reported average.
        let us = AVG_TASK_US * rng.uniform(0.85, 1.15);
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .function(0)
                .output(out_lines.addr(line))
                .duration_us(us)
                .build()
        });
    }
    b.taskwait();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn full_trace_matches_table2_row() {
        let t = generate(42, 1.0);
        let s = TraceStats::of(&t);
        assert_eq!(s.tasks, 1200);
        assert_eq!(s.deps_column(), "1");
        // Average task size within 5% of the paper's 6151 us.
        assert!(
            (s.avg_task_us - AVG_TASK_US).abs() / AVG_TASK_US < 0.05,
            "avg {}",
            s.avg_task_us
        );
        // Total work within 10% of the paper's 7381 ms.
        assert!(
            (s.total_work_ms - 7381.0).abs() / 7381.0 < 0.10,
            "{}",
            s.total_work_ms
        );
        assert_eq!(s.taskwaits, 1);
        t.validate().unwrap();
    }

    #[test]
    fn all_tasks_are_independent() {
        // No address is used by two different tasks.
        let t = generate(1, 0.2);
        let mut seen = std::collections::HashSet::new();
        for task in t.tasks() {
            for p in &task.params {
                assert!(seen.insert(p.addr), "address reused across c-ray tasks");
            }
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = generate(9, 0.1);
        let b = generate(9, 0.1);
        assert_eq!(a.ops, b.ops);
        let c = generate(10, 0.1);
        assert_ne!(a.total_work(), c.total_work());
    }
}
