//! Node-partitioned workloads for the multi-node cluster simulation.
//!
//! The single-node generators reproduce the paper's benchmarks; the cluster
//! simulation (`nexus-cluster`) additionally needs traces whose tasks carry a
//! *home node* and whose dependency edges cross nodes in a controlled way.
//! Following the domain-decomposition style of distributed task-based runtimes
//! (DuctTeip's hierarchical task pools, the distributed-manager runtime of
//! Bosch et al.), [`partition`] builds such a trace from `N` per-node
//! sub-problems:
//!
//! * each node owns a disjoint address domain (the sub-trace's addresses are
//!   offset by [`NODE_ADDR_STRIDE`] per node, far above the low 20 bits the
//!   XOR distribution function folds),
//! * every task gets an affinity hint naming its home node,
//! * submissions interleave round-robin across nodes, mimicking a master that
//!   streams descriptors breadth-first over the domains,
//! * a tunable fraction of tasks additionally reads a *halo* address — the
//!   most recently written address of a neighbouring node — creating genuine
//!   cross-node dependency edges whose notifications must traverse the
//!   interconnect.
//!
//! With `remote_fraction = 0` the domains are fully independent (only worker
//! capacity is shared); with `remote_fraction = 1` every task (where possible)
//! carries a remote input edge, making the workload interconnect-bound on slow
//! links.

use crate::addr::ADDR_MASK_48;
use crate::task::{TaskDescriptor, TaskParam};
use crate::trace::{Trace, TraceBuilder};
use nexus_sim::{SimDuration, SimRng};

/// Address-space offset between consecutive node domains. Bit 28 is well above
/// the low-20-bit window of the XOR distribution function (so intra-node
/// distribution behaviour is unchanged) and well below the 48-bit address
/// limit.
pub const NODE_ADDR_STRIDE: u64 = 1 << 28;

/// Interleaves per-node sub-traces into one node-partitioned cluster trace.
///
/// `subs[n]` becomes node `n`'s domain: its task addresses are shifted into a
/// private address band, its tasks get `affinity(n)`, and barriers inside the
/// sub-traces are dropped (the combined trace ends with a single global
/// `taskwait`). With probability `remote_fraction` (deterministic in `seed`) a
/// task also reads the most recently written address of the next node,
/// creating a cross-node dependency edge.
///
/// # Panics
/// Panics if `subs` is empty.
pub fn partition(
    name: impl Into<String>,
    subs: Vec<Trace>,
    remote_fraction: f64,
    seed: u64,
) -> Trace {
    let nodes = subs.len();
    assert!(nodes > 0, "need at least one node domain");
    let remote_fraction = if remote_fraction.is_finite() {
        remote_fraction.clamp(0.0, 1.0)
    } else {
        0.0
    };

    let mut streams: Vec<std::collections::VecDeque<TaskDescriptor>> = subs
        .into_iter()
        .enumerate()
        .map(|(node, sub)| {
            let offset = node as u64 * NODE_ADDR_STRIDE;
            sub.tasks()
                .map(|t| {
                    let mut t = t.clone();
                    for p in &mut t.params {
                        p.addr = (p.addr + offset) & ADDR_MASK_48;
                    }
                    t.affinity = Some(node as u32);
                    t
                })
                .collect()
        })
        .collect();

    let mut rng = SimRng::new(seed ^ 0xD157_0000_0000_0001);
    let mut last_written: Vec<Option<u64>> = vec![None; nodes];
    let mut b = TraceBuilder::new(name);

    while streams.iter().any(|s| !s.is_empty()) {
        for node in 0..nodes {
            let Some(mut task) = streams[node].pop_front() else {
                continue;
            };
            // Halo read: couple this task to a neighbouring domain.
            if nodes > 1 && rng.next_f64() < remote_fraction {
                let donor = (node + 1) % nodes;
                if let Some(addr) = last_written[donor] {
                    if task.params.iter().all(|p| p.addr != addr) {
                        task.params.push(TaskParam::input(addr));
                    }
                }
            }
            if let Some(w) = task.outputs().last() {
                last_written[node] = Some(w.addr);
            }
            b.submit_with(|id| {
                task.id = id;
                task
            });
        }
    }
    b.taskwait();
    b.finish()
}

/// Per-node workload weights of an imbalanced partition: a linear ramp from
/// `skew` (node 0) down to `1.0` (the last node), normalized so `skew = 1`
/// is the balanced case. Node 0 therefore owns `skew`× the work of the last
/// node — the deliberately overloaded domain the work-stealing policies must
/// drain.
///
/// # Panics
/// Panics if `nodes` is zero or `skew < 1`.
pub fn skew_weights(nodes: usize, skew: f64) -> Vec<f64> {
    assert!(nodes > 0, "need at least one node domain");
    assert!(
        skew.is_finite() && skew >= 1.0,
        "skew must be a finite factor >= 1 (got {skew})"
    );
    (0..nodes)
        .map(|n| {
            if nodes == 1 {
                1.0 // a single domain has nothing to be skewed against
            } else {
                skew + (1.0 - skew) * n as f64 / (nodes - 1) as f64
            }
        })
        .collect()
}

/// Strips every affinity hint from `trace`, leaving routing entirely to the
/// placement policy (the un-hinted workloads of the `policy_comparison`
/// sweep). Everything else — addresses, durations, barriers — is unchanged.
pub fn unhinted(trace: &Trace) -> Trace {
    let mut out = trace.clone();
    out.name = format!("{}-unhinted", trace.name);
    for op in &mut out.ops {
        if let crate::trace::TraceOp::Submit(task) = op {
            task.affinity = None;
        }
    }
    out
}

/// An imbalanced node-partitioned batch of independent tasks: node `n` owns
/// `weights[n] / weights.last()` × `base_tasks` independent tasks of
/// `duration` each (see [`skew_weights`]), plus the usual `remote_fraction`
/// halo coupling. With `skew > 1` node 0 is deliberately overloaded while the
/// last node finishes early — the reproducible test bed for work stealing
/// (without stealing, the makespan is pinned to node 0's backlog).
///
/// # Panics
/// Panics if `nodes` or `base_tasks` is zero, or `skew < 1`.
pub fn imbalanced(
    nodes: usize,
    base_tasks: u64,
    skew: f64,
    duration: SimDuration,
    remote_fraction: f64,
    seed: u64,
) -> Trace {
    assert!(base_tasks > 0, "need at least one task per node domain");
    let subs = skew_weights(nodes, skew)
        .into_iter()
        .map(|w| {
            let count = ((base_tasks as f64 * w).round() as u64).max(1);
            super::micro::independent_tasks(count, 2, duration)
        })
        .collect();
    partition(
        format!(
            "dist-imbalanced-{base_tasks}t-s{skew:.1}-{nodes}n-r{:.0}",
            remote_fraction.clamp(0.0, 1.0) * 100.0
        ),
        subs,
        remote_fraction,
        seed,
    )
}

/// An imbalanced node-partitioned batch of dependence *chains*: node `n` owns
/// `base_chains / skew^n` independent chains (rounded, floor 1 — a geometric
/// decay that concentrates nearly all serial work on node 0) of `depth` tasks
/// each, every chain pinned to its home node by an affinity hint and
/// serialized through its own inout address.
///
/// Where [`imbalanced`] skews *independent* tasks — which work stealing alone
/// can rebalance, since every pending descriptor is eligible — this trace
/// skews *serial* work: at any instant each chain exposes exactly one
/// eligible task (its current head), so a stealing policy can never see more
/// than `chains` stealable descriptors while the blocked tails sit in the
/// overloaded node's pool. This is the reproducible test bed for pool
/// reclamation (`FeedbackKind::Reclaim`): relocating the blocked tails is the
/// only way an idle node can take over a whole chain instead of paying one
/// steal round-trip per task.
///
/// Submission is chain-major, round-robin across nodes at chain granularity
/// (all of node 0's first chain, all of node 1's first chain, …, then every
/// node's second chain), so each node's input queue holds contiguous whole
/// chains and a reclaim batch taken from the back of the queue relocates
/// coherent chain *tails* rather than one link of many chains. The
/// construction is fully deterministic — no halo randomness, so no seed
/// parameter.
///
/// # Panics
/// Panics if `nodes`, `base_chains` or `depth` is zero, or `skew < 1`.
pub fn chained_imbalanced(
    nodes: usize,
    base_chains: u64,
    depth: u64,
    skew: f64,
    duration: SimDuration,
) -> Trace {
    assert!(nodes > 0, "need at least one node domain");
    assert!(base_chains > 0, "need at least one chain per node domain");
    assert!(depth > 0, "need at least one task per chain");
    assert!(
        skew.is_finite() && skew >= 1.0,
        "skew must be a finite factor >= 1 (got {skew})"
    );
    let counts: Vec<u64> = (0..nodes)
        .map(|n| ((base_chains as f64 / skew.powi(n as i32)).round() as u64).max(1))
        .collect();
    let mut b = TraceBuilder::new(format!(
        "dist-chains-{base_chains}c{depth}d-s{skew:.1}-{nodes}n"
    ));
    let max_chains = *counts.iter().max().expect("at least one node domain");
    for chain in 0..max_chains {
        for (node, &chains) in counts.iter().enumerate() {
            if chain >= chains {
                continue;
            }
            let addr = (node as u64 * NODE_ADDR_STRIDE + 0x1000 + chain * 0x40) & ADDR_MASK_48;
            for _ in 0..depth {
                b.submit_with(|id| {
                    TaskDescriptor::builder(id.0)
                        .inout(addr)
                        .duration(duration)
                        .affinity(node as u32)
                        .build()
                });
            }
        }
    }
    b.taskwait();
    b.finish()
}

/// A node-partitioned blocked sparse LU factorization: each node factorizes
/// its own block matrix (per-node seed/scale as in
/// [`super::sparselu::generate`]) with a `remote_fraction` halo coupling.
pub fn sparselu(nodes: usize, remote_fraction: f64, seed: u64, scale: f64) -> Trace {
    let subs = (0..nodes)
        .map(|n| super::sparselu::generate(seed.wrapping_add(n as u64 * 7919), scale))
        .collect();
    partition(
        dist_name("sparselu", nodes, remote_fraction),
        subs,
        remote_fraction,
        seed,
    )
}

/// A node-partitioned Gaussian elimination: each node eliminates its own
/// `dim × dim` matrix with a `remote_fraction` halo coupling.
pub fn gaussian(nodes: usize, remote_fraction: f64, dim: u32, seed: u64) -> Trace {
    let subs = (0..nodes).map(|_| super::gaussian::generate(dim)).collect();
    partition(
        dist_name(&format!("gaussian-{dim}"), nodes, remote_fraction),
        subs,
        remote_fraction,
        seed,
    )
}

/// A node-partitioned macroblock wavefront: each node decodes its own
/// `rows × cols` frame with a `remote_fraction` halo coupling.
pub fn wavefront(
    nodes: usize,
    remote_fraction: f64,
    rows: u64,
    cols: u64,
    task: SimDuration,
    seed: u64,
) -> Trace {
    let subs = (0..nodes)
        .map(|_| super::micro::wavefront(rows, cols, task))
        .collect();
    partition(
        dist_name(&format!("wavefront-{rows}x{cols}"), nodes, remote_fraction),
        subs,
        remote_fraction,
        seed,
    )
}

/// A rack-clustered workload whose dependence structure matches (or
/// deliberately fights) a two-tier fabric.
///
/// The cluster has `racks × nodes_per_rack` nodes, numbered rack-major so
/// rack `r` owns nodes `r * nodes_per_rack ..` — the same layout
/// `nexus-topo`'s `RackTiers` fabric uses. Each node owns `chains` dependence
/// chains of `chain_len` tasks over *distinct* addresses in the node's
/// private band (so an address hash scatters the links, while a
/// dependence-following placement can keep each chain on one node); the
/// first node of every rack owns `skew`× the chains — the deliberately
/// overloaded domain that work stealing must drain toward its rack peers.
///
/// With probability `coupling`, a task additionally reads the most recently
/// written address of a *donor* node: a same-rack neighbour with probability
/// `1 - cross_rack`, a node in a foreign rack with probability `cross_rack`.
/// At `cross_rack = 0` every coupled edge stays inside a rack (the trace
/// matches the fabric); at `cross_rack = 1` every coupled edge crosses racks
/// (the trace fights it, making tiered fabrics degrade vs. a full mesh).
///
/// Every task carries an affinity hint naming its node; strip them with
/// [`unhinted`] to hand the clustering problem to the placement policy.
/// Submissions interleave round-robin across nodes. Deterministic in `seed`.
///
/// # Panics
/// Panics if `racks`, `nodes_per_rack`, `chains` or `chain_len` is zero, or
/// `skew < 1`.
#[allow(clippy::too_many_arguments)]
pub fn rack_clustered(
    racks: usize,
    nodes_per_rack: usize,
    chains: u64,
    chain_len: u64,
    skew: f64,
    coupling: f64,
    cross_rack: f64,
    duration: SimDuration,
    seed: u64,
) -> Trace {
    assert!(racks > 0, "need at least one rack");
    assert!(nodes_per_rack > 0, "need at least one node per rack");
    assert!(
        chains > 0 && chain_len > 0,
        "need at least one task per node"
    );
    assert!(
        skew.is_finite() && skew >= 1.0,
        "skew must be a finite factor >= 1 (got {skew})"
    );
    let nodes = racks * nodes_per_rack;
    let coupling = if coupling.is_finite() {
        coupling.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let cross_rack = if cross_rack.is_finite() {
        cross_rack.clamp(0.0, 1.0)
    } else {
        0.0
    };

    // Per-node task streams: `chains` chains of `chain_len` tasks over
    // distinct addresses (chain-major order).
    let mut streams: Vec<std::collections::VecDeque<TaskDescriptor>> = (0..nodes)
        .map(|node| {
            let node_chains = if node.is_multiple_of(nodes_per_rack) {
                ((chains as f64 * skew).round() as u64).max(1)
            } else {
                chains
            };
            let band = node as u64 * NODE_ADDR_STRIDE;
            let mut out = std::collections::VecDeque::new();
            for c in 0..node_chains {
                for j in 0..chain_len {
                    let addr = (band + (c * chain_len + j + 1) * 0x40) & ADDR_MASK_48;
                    let mut b = TaskDescriptor::builder(0).duration(duration);
                    if j > 0 {
                        let prev = (band + (c * chain_len + j) * 0x40) & ADDR_MASK_48;
                        b = b.input(prev);
                    }
                    out.push_back(b.output(addr).affinity(node as u32).build());
                }
            }
            out
        })
        .collect();

    let mut rng = SimRng::new(seed ^ 0x7AC7_0000_0000_0003);
    let mut last_written: Vec<Option<u64>> = vec![None; nodes];
    let mut b = TraceBuilder::new(format!(
        "dist-rack-{racks}x{nodes_per_rack}-s{skew:.1}-c{:.0}-x{:.0}",
        coupling * 100.0,
        cross_rack * 100.0
    ));

    while streams.iter().any(|s| !s.is_empty()) {
        for node in 0..nodes {
            let Some(mut task) = streams[node].pop_front() else {
                continue;
            };
            if rng.next_f64() < coupling {
                let rack = node / nodes_per_rack;
                let donor = if racks > 1 && rng.next_f64() < cross_rack {
                    // A node in a foreign rack, uniform over the other racks.
                    let fr = {
                        let r = rng.next_below(racks as u64 - 1) as usize;
                        if r >= rack {
                            r + 1
                        } else {
                            r
                        }
                    };
                    Some(fr * nodes_per_rack + rng.next_below(nodes_per_rack as u64) as usize)
                } else if nodes_per_rack > 1 {
                    // A same-rack neighbour other than this node.
                    let m = rng.next_below(nodes_per_rack as u64 - 1) as usize;
                    let m = if m >= node % nodes_per_rack { m + 1 } else { m };
                    Some(rack * nodes_per_rack + m)
                } else {
                    None // a one-node rack has no intra-rack donor
                };
                if let Some(addr) = donor.and_then(|d| last_written[d]) {
                    if task.params.iter().all(|p| p.addr != addr) {
                        task.params.push(TaskParam::input(addr));
                    }
                }
            }
            if let Some(w) = task.outputs().last() {
                last_written[node] = Some(w.addr);
            }
            b.submit_with(|id| {
                task.id = id;
                task
            });
        }
    }
    b.taskwait();
    b.finish()
}

fn dist_name(base: &str, nodes: usize, remote_fraction: f64) -> String {
    format!(
        "dist-{base}-{nodes}n-r{:.0}",
        remote_fraction.clamp(0.0, 1.0) * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band(addr: u64) -> u64 {
        addr / NODE_ADDR_STRIDE
    }

    #[test]
    fn partition_is_deterministic() {
        let a = sparselu(4, 0.3, 11, 0.002);
        let b = sparselu(4, 0.3, 11, 0.002);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.name, "dist-sparselu-4n-r30");
    }

    #[test]
    fn domains_are_disjoint_without_halo_reads() {
        let t = wavefront(3, 0.0, 4, 4, SimDuration::from_us(10), 1);
        t.validate().unwrap();
        assert_eq!(t.task_count(), 3 * 16);
        for task in t.tasks() {
            let node = task.affinity.expect("every task carries an affinity") as u64;
            let home_band = band(task.params[0].addr);
            for p in &task.params {
                assert_eq!(band(p.addr), home_band, "{}: foreign address", task.id);
            }
            // Bands are consecutive per node.
            assert_eq!(home_band - band_of_node_zero(&t), node);
        }
    }

    fn band_of_node_zero(t: &Trace) -> u64 {
        t.tasks()
            .filter(|t| t.affinity == Some(0))
            .map(|t| band(t.params[0].addr))
            .next()
            .unwrap()
    }

    #[test]
    fn chained_imbalanced_pins_geometric_serial_chains() {
        let t = chained_imbalanced(4, 36, 16, 6.0, SimDuration::from_us(20));
        t.validate().unwrap();
        assert_eq!(t.name, "dist-chains-36c16d-s6.0-4n");
        // Geometric decay: 36, 6, 1, 1 chains of 16 links each.
        let per_node = |n: u32| t.tasks().filter(|task| task.affinity == Some(n)).count();
        assert_eq!(per_node(0), 36 * 16);
        assert_eq!(per_node(1), 6 * 16);
        assert_eq!(per_node(2), 16);
        assert_eq!(per_node(3), 16);
        // Every chain serializes through one inout address in its home band,
        // exactly `depth` tasks deep.
        let mut links = std::collections::HashMap::new();
        for task in t.tasks() {
            assert_eq!(task.params.len(), 1);
            let node = task.affinity.expect("every task carries an affinity") as u64;
            assert_eq!(band(task.params[0].addr), node);
            *links.entry(task.params[0].addr).or_insert(0u64) += 1;
        }
        assert_eq!(links.len(), 36 + 6 + 1 + 1);
        assert!(links.values().all(|&depth| depth == 16));
        // Deterministic without a seed.
        let again = chained_imbalanced(4, 36, 16, 6.0, SimDuration::from_us(20));
        assert_eq!(t.ops, again.ops);
    }

    #[test]
    fn halo_reads_cross_node_bands() {
        let local = wavefront(4, 0.0, 6, 6, SimDuration::from_us(10), 2);
        let coupled = wavefront(4, 1.0, 6, 6, SimDuration::from_us(10), 2);
        assert_eq!(local.task_count(), coupled.task_count());
        let crossing = |t: &Trace| {
            t.tasks()
                .filter(|task| {
                    let home = band(task.params[0].addr);
                    task.params.iter().any(|p| band(p.addr) != home)
                })
                .count()
        };
        assert_eq!(crossing(&local), 0);
        // With remote_fraction = 1 nearly every task carries a halo read (the
        // very first round has no donor writes yet).
        assert!(crossing(&coupled) > coupled.task_count() / 2);
        coupled.validate().unwrap();
    }

    #[test]
    fn single_node_partition_has_no_remote_edges() {
        let t = gaussian(1, 1.0, 20, 3);
        t.validate().unwrap();
        for task in t.tasks() {
            assert_eq!(task.affinity, Some(0));
        }
    }

    #[test]
    fn skew_weights_ramp_from_skew_to_one() {
        let w = skew_weights(4, 3.0);
        assert_eq!(w.len(), 4);
        assert!((w[0] - 3.0).abs() < 1e-12 && (w[3] - 1.0).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] >= p[1]), "{w:?}");
        assert!(skew_weights(4, 1.0)
            .iter()
            .all(|&x| (x - 1.0).abs() < 1e-12));
        // One node: skew is meaningless, the workload stays at base size.
        assert_eq!(skew_weights(1, 2.0), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "skew must be")]
    fn sub_unit_skew_is_rejected() {
        let _ = skew_weights(4, 0.5);
    }

    #[test]
    fn imbalanced_partition_overloads_node_zero() {
        let t = imbalanced(4, 64, 4.0, SimDuration::from_us(50), 0.0, 9);
        t.validate().unwrap();
        let mut per_node = vec![0u64; 4];
        for task in t.tasks() {
            per_node[task.affinity.unwrap() as usize] += 1;
        }
        assert_eq!(per_node[3], 64);
        assert_eq!(per_node[0], 256, "{per_node:?}");
        assert!(per_node.windows(2).all(|p| p[0] >= p[1]), "{per_node:?}");
        // Balanced at skew = 1.
        let flat = imbalanced(4, 64, 1.0, SimDuration::from_us(50), 0.0, 9);
        assert_eq!(flat.task_count(), 4 * 64);
        // Deterministic.
        let again = imbalanced(4, 64, 4.0, SimDuration::from_us(50), 0.0, 9);
        assert_eq!(t.ops, again.ops);
    }

    #[test]
    fn unhinted_strips_every_affinity_and_nothing_else() {
        let hinted = sparselu(4, 0.3, 11, 0.002);
        let bare = unhinted(&hinted);
        assert_eq!(bare.name, format!("{}-unhinted", hinted.name));
        assert_eq!(bare.task_count(), hinted.task_count());
        assert_eq!(bare.total_work(), hinted.total_work());
        for (a, b) in hinted.tasks().zip(bare.tasks()) {
            assert!(a.affinity.is_some());
            assert!(b.affinity.is_none());
            assert_eq!(a.params, b.params);
            assert_eq!(a.duration, b.duration);
        }
    }

    #[test]
    fn rack_clustered_respects_bands_skew_and_rack_structure() {
        let d = SimDuration::from_us(20);
        // 2 racks x 2 nodes, 3 chains of 4 tasks, first-of-rack 2x skew.
        let t = rack_clustered(2, 2, 3, 4, 2.0, 0.0, 0.0, d, 7);
        t.validate().unwrap();
        let mut per_node = vec![0u64; 4];
        for task in t.tasks() {
            let node = task.affinity.expect("every task carries an affinity") as usize;
            per_node[node] += 1;
            // Uncoupled: every address stays in the node's band.
            for p in &task.params {
                assert_eq!(band(p.addr), node as u64, "{}: foreign address", task.id);
            }
        }
        // Rack heads (nodes 0 and 2) own 2x the chains.
        assert_eq!(per_node, vec![24, 12, 24, 12]);
        // Deterministic.
        let again = rack_clustered(2, 2, 3, 4, 2.0, 0.0, 0.0, d, 7);
        assert_eq!(t.ops, again.ops);
        assert_eq!(t.name, "dist-rack-2x2-s2.0-c0-x0");
    }

    #[test]
    fn rack_clustered_coupling_targets_the_requested_tier() {
        let d = SimDuration::from_us(20);
        let rack_of = |addr: u64| band(addr) / 2; // 2 nodes per rack
        let edge_kinds = |t: &Trace| {
            // (intra-rack cross-node reads, cross-rack reads)
            let mut intra = 0usize;
            let mut cross = 0usize;
            for task in t.tasks() {
                let home = band(task.params[0].addr);
                for p in &task.params {
                    if band(p.addr) != home {
                        if rack_of(p.addr) == home / 2 {
                            intra += 1;
                        } else {
                            cross += 1;
                        }
                    }
                }
            }
            (intra, cross)
        };
        let matched = rack_clustered(2, 2, 4, 4, 1.0, 1.0, 0.0, d, 9);
        let (intra, cross) = edge_kinds(&matched);
        assert!(intra > 0);
        assert_eq!(cross, 0, "cross_rack = 0 must stay inside the racks");

        let fighting = rack_clustered(2, 2, 4, 4, 1.0, 1.0, 1.0, d, 9);
        let (intra, cross) = edge_kinds(&fighting);
        assert_eq!(intra, 0, "cross_rack = 1 must always leave the rack");
        assert!(cross > fighting.task_count() / 2);

        let uncoupled = rack_clustered(2, 2, 4, 4, 1.0, 0.0, 1.0, d, 9);
        let (intra, cross) = edge_kinds(&uncoupled);
        assert_eq!((intra, cross), (0, 0), "no coupling, no halo reads");
    }

    #[test]
    fn rack_clustered_chains_link_through_distinct_addresses() {
        let t = rack_clustered(1, 2, 2, 5, 1.0, 0.0, 0.0, SimDuration::from_us(10), 3);
        // Within a node, outputs are all distinct (an address hash scatters
        // them) while chain inputs reference the previous output.
        let mut outputs = std::collections::HashSet::new();
        for task in t.tasks() {
            for p in task.outputs() {
                assert!(outputs.insert(p.addr), "duplicate output {:#x}", p.addr);
            }
        }
        assert_eq!(t.task_count(), 2 * 2 * 5);
    }

    #[test]
    #[should_panic(expected = "skew must be")]
    fn rack_clustered_rejects_sub_unit_skew() {
        let _ = rack_clustered(2, 2, 2, 2, 0.5, 0.0, 0.0, SimDuration::from_us(1), 1);
    }

    #[test]
    fn remote_fraction_is_monotone_in_halo_count() {
        let count_extra = |r: f64| {
            let t = sparselu(4, r, 5, 0.002);
            t.tasks().filter(|t| t.num_params() > 3).count()
        };
        let none = count_extra(0.0);
        let some = count_extra(0.3);
        let all = count_extra(1.0);
        assert_eq!(none, 0);
        assert!(some > 0 && some < all, "{some} vs {all}");
    }
}
