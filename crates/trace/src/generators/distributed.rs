//! Node-partitioned workloads for the multi-node cluster simulation.
//!
//! The single-node generators reproduce the paper's benchmarks; the cluster
//! simulation (`nexus-cluster`) additionally needs traces whose tasks carry a
//! *home node* and whose dependency edges cross nodes in a controlled way.
//! Following the domain-decomposition style of distributed task-based runtimes
//! (DuctTeip's hierarchical task pools, the distributed-manager runtime of
//! Bosch et al.), [`partition`] builds such a trace from `N` per-node
//! sub-problems:
//!
//! * each node owns a disjoint address domain (the sub-trace's addresses are
//!   offset by [`NODE_ADDR_STRIDE`] per node, far above the low 20 bits the
//!   XOR distribution function folds),
//! * every task gets an affinity hint naming its home node,
//! * submissions interleave round-robin across nodes, mimicking a master that
//!   streams descriptors breadth-first over the domains,
//! * a tunable fraction of tasks additionally reads a *halo* address — the
//!   most recently written address of a neighbouring node — creating genuine
//!   cross-node dependency edges whose notifications must traverse the
//!   interconnect.
//!
//! With `remote_fraction = 0` the domains are fully independent (only worker
//! capacity is shared); with `remote_fraction = 1` every task (where possible)
//! carries a remote input edge, making the workload interconnect-bound on slow
//! links.

use crate::addr::ADDR_MASK_48;
use crate::task::{TaskDescriptor, TaskParam};
use crate::trace::{Trace, TraceBuilder};
use nexus_sim::{SimDuration, SimRng};

/// Address-space offset between consecutive node domains. Bit 28 is well above
/// the low-20-bit window of the XOR distribution function (so intra-node
/// distribution behaviour is unchanged) and well below the 48-bit address
/// limit.
pub const NODE_ADDR_STRIDE: u64 = 1 << 28;

/// Interleaves per-node sub-traces into one node-partitioned cluster trace.
///
/// `subs[n]` becomes node `n`'s domain: its task addresses are shifted into a
/// private address band, its tasks get `affinity(n)`, and barriers inside the
/// sub-traces are dropped (the combined trace ends with a single global
/// `taskwait`). With probability `remote_fraction` (deterministic in `seed`) a
/// task also reads the most recently written address of the next node,
/// creating a cross-node dependency edge.
///
/// # Panics
/// Panics if `subs` is empty.
pub fn partition(
    name: impl Into<String>,
    subs: Vec<Trace>,
    remote_fraction: f64,
    seed: u64,
) -> Trace {
    let nodes = subs.len();
    assert!(nodes > 0, "need at least one node domain");
    let remote_fraction = if remote_fraction.is_finite() {
        remote_fraction.clamp(0.0, 1.0)
    } else {
        0.0
    };

    let mut streams: Vec<std::collections::VecDeque<TaskDescriptor>> = subs
        .into_iter()
        .enumerate()
        .map(|(node, sub)| {
            let offset = node as u64 * NODE_ADDR_STRIDE;
            sub.tasks()
                .map(|t| {
                    let mut t = t.clone();
                    for p in &mut t.params {
                        p.addr = (p.addr + offset) & ADDR_MASK_48;
                    }
                    t.affinity = Some(node as u32);
                    t
                })
                .collect()
        })
        .collect();

    let mut rng = SimRng::new(seed ^ 0xD157_0000_0000_0001);
    let mut last_written: Vec<Option<u64>> = vec![None; nodes];
    let mut b = TraceBuilder::new(name);

    while streams.iter().any(|s| !s.is_empty()) {
        for node in 0..nodes {
            let Some(mut task) = streams[node].pop_front() else {
                continue;
            };
            // Halo read: couple this task to a neighbouring domain.
            if nodes > 1 && rng.next_f64() < remote_fraction {
                let donor = (node + 1) % nodes;
                if let Some(addr) = last_written[donor] {
                    if task.params.iter().all(|p| p.addr != addr) {
                        task.params.push(TaskParam::input(addr));
                    }
                }
            }
            if let Some(w) = task.outputs().last() {
                last_written[node] = Some(w.addr);
            }
            b.submit_with(|id| {
                task.id = id;
                task
            });
        }
    }
    b.taskwait();
    b.finish()
}

/// A node-partitioned blocked sparse LU factorization: each node factorizes
/// its own block matrix (per-node seed/scale as in
/// [`super::sparselu::generate`]) with a `remote_fraction` halo coupling.
pub fn sparselu(nodes: usize, remote_fraction: f64, seed: u64, scale: f64) -> Trace {
    let subs = (0..nodes)
        .map(|n| super::sparselu::generate(seed.wrapping_add(n as u64 * 7919), scale))
        .collect();
    partition(
        dist_name("sparselu", nodes, remote_fraction),
        subs,
        remote_fraction,
        seed,
    )
}

/// A node-partitioned Gaussian elimination: each node eliminates its own
/// `dim × dim` matrix with a `remote_fraction` halo coupling.
pub fn gaussian(nodes: usize, remote_fraction: f64, dim: u32, seed: u64) -> Trace {
    let subs = (0..nodes).map(|_| super::gaussian::generate(dim)).collect();
    partition(
        dist_name(&format!("gaussian-{dim}"), nodes, remote_fraction),
        subs,
        remote_fraction,
        seed,
    )
}

/// A node-partitioned macroblock wavefront: each node decodes its own
/// `rows × cols` frame with a `remote_fraction` halo coupling.
pub fn wavefront(
    nodes: usize,
    remote_fraction: f64,
    rows: u64,
    cols: u64,
    task: SimDuration,
    seed: u64,
) -> Trace {
    let subs = (0..nodes)
        .map(|_| super::micro::wavefront(rows, cols, task))
        .collect();
    partition(
        dist_name(&format!("wavefront-{rows}x{cols}"), nodes, remote_fraction),
        subs,
        remote_fraction,
        seed,
    )
}

fn dist_name(base: &str, nodes: usize, remote_fraction: f64) -> String {
    format!(
        "dist-{base}-{nodes}n-r{:.0}",
        remote_fraction.clamp(0.0, 1.0) * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band(addr: u64) -> u64 {
        addr / NODE_ADDR_STRIDE
    }

    #[test]
    fn partition_is_deterministic() {
        let a = sparselu(4, 0.3, 11, 0.002);
        let b = sparselu(4, 0.3, 11, 0.002);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.name, "dist-sparselu-4n-r30");
    }

    #[test]
    fn domains_are_disjoint_without_halo_reads() {
        let t = wavefront(3, 0.0, 4, 4, SimDuration::from_us(10), 1);
        t.validate().unwrap();
        assert_eq!(t.task_count(), 3 * 16);
        for task in t.tasks() {
            let node = task.affinity.expect("every task carries an affinity") as u64;
            let home_band = band(task.params[0].addr);
            for p in &task.params {
                assert_eq!(band(p.addr), home_band, "{}: foreign address", task.id);
            }
            // Bands are consecutive per node.
            assert_eq!(home_band - band_of_node_zero(&t), node);
        }
    }

    fn band_of_node_zero(t: &Trace) -> u64 {
        t.tasks()
            .filter(|t| t.affinity == Some(0))
            .map(|t| band(t.params[0].addr))
            .next()
            .unwrap()
    }

    #[test]
    fn halo_reads_cross_node_bands() {
        let local = wavefront(4, 0.0, 6, 6, SimDuration::from_us(10), 2);
        let coupled = wavefront(4, 1.0, 6, 6, SimDuration::from_us(10), 2);
        assert_eq!(local.task_count(), coupled.task_count());
        let crossing = |t: &Trace| {
            t.tasks()
                .filter(|task| {
                    let home = band(task.params[0].addr);
                    task.params.iter().any(|p| band(p.addr) != home)
                })
                .count()
        };
        assert_eq!(crossing(&local), 0);
        // With remote_fraction = 1 nearly every task carries a halo read (the
        // very first round has no donor writes yet).
        assert!(crossing(&coupled) > coupled.task_count() / 2);
        coupled.validate().unwrap();
    }

    #[test]
    fn single_node_partition_has_no_remote_edges() {
        let t = gaussian(1, 1.0, 20, 3);
        t.validate().unwrap();
        for task in t.tasks() {
            assert_eq!(task.affinity, Some(0));
        }
    }

    #[test]
    fn remote_fraction_is_monotone_in_halo_count() {
        let count_extra = |r: f64| {
            let t = sparselu(4, r, 5, 0.002);
            t.tasks().filter(|t| t.num_params() > 3).count()
        };
        let none = count_extra(0.0);
        let some = count_extra(0.3);
        let all = count_extra(1.0);
        assert_eq!(none, 0);
        assert!(some > 0 && some < all, "{some} vs {all}");
    }
}
