//! Micro traces used for the pipeline cycle studies (Fig. 4, Fig. 5, §IV-E)
//! and for unit/property testing of the managers.

use crate::addr::AddrRegion;
use crate::task::TaskDescriptor;
use crate::trace::{Trace, TraceBuilder};
use nexus_sim::SimDuration;

/// The §IV-E comparison micro-benchmark: "a micro benchmark built after \[19\]
/// that includes inserting 5 independent tasks, each with two parameters".
/// Nexus# with one task graph handles it in 78 cycles (vs. 172 in \[19\]).
pub fn five_independent_tasks() -> Trace {
    independent_tasks(5, 2, SimDuration::from_us(1))
}

/// `count` independent tasks with `params` parameters each (no address sharing).
pub fn independent_tasks(count: u64, params: usize, duration: SimDuration) -> Trace {
    let region = AddrRegion::benchmark_array(7);
    let mut b = TraceBuilder::new(format!("micro-independent-{count}x{params}"));
    let mut next = 0u64;
    for _ in 0..count {
        let mut addrs = Vec::with_capacity(params);
        for _ in 0..params {
            addrs.push(region.addr(next));
            next += 1;
        }
        b.submit_with(|id| {
            let mut t = TaskDescriptor::builder(id.0).function(0);
            for (k, a) in addrs.iter().enumerate() {
                t = if k == 0 { t.inout(*a) } else { t.input(*a) };
            }
            t.duration(duration).build()
        });
    }
    b.taskwait();
    b.finish()
}

/// A single task with `params` parameters — the 4-parameter instance is the
/// running example of the pipeline figures (Fig. 1, Fig. 4, Fig. 5).
pub fn single_task(params: usize, duration: SimDuration) -> Trace {
    independent_tasks(1, params.max(1), duration)
}

/// A serial chain of `n` tasks, each depending on its predecessor through a
/// single inout parameter. The worst case for any task manager: zero
/// parallelism, pure per-task overhead.
pub fn chain(n: u64, duration: SimDuration) -> Trace {
    let region = AddrRegion::benchmark_array(8);
    let addr = region.addr(0);
    let mut b = TraceBuilder::new(format!("micro-chain-{n}"));
    for _ in 0..n {
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .function(0)
                .inout(addr)
                .duration(duration)
                .build()
        });
    }
    b.taskwait();
    b.finish()
}

/// A fork-join: one producer task, `width` independent consumers reading the
/// producer's output, then a joiner reading all consumer outputs (capped at 6
/// parameters by splitting into a reduction tree if needed — here we keep a
/// single joiner with up to `width` inputs for stress-testing long parameter
/// lists is *not* the goal, so the joiner reads a single reduced address that
/// every consumer also writes with `inout`, serializing the join).
pub fn fork_join(width: u64, duration: SimDuration) -> Trace {
    let region = AddrRegion::benchmark_array(9);
    let src = region.addr(0);
    let acc = region.addr(1);
    let mut b = TraceBuilder::new(format!("micro-forkjoin-{width}"));
    b.submit_with(|id| {
        TaskDescriptor::builder(id.0)
            .function(0)
            .output(src)
            .duration(duration)
            .build()
    });
    for w in 0..width {
        let own = region.addr(2 + w);
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .function(1)
                .input(src)
                .output(own)
                .duration(duration)
                .build()
        });
    }
    // Joiner: accumulates every consumer output (modelled as reading the last
    // consumer's output plus updating a shared accumulator).
    let last = region.addr(2 + width.saturating_sub(1));
    b.submit_with(|id| {
        TaskDescriptor::builder(id.0)
            .function(2)
            .input(last)
            .inout(acc)
            .duration(duration)
            .build()
    });
    b.taskwait();
    b.finish()
}

/// The wavefront of Listing 1 (macroblock decoding of a single frame of
/// `rows × cols` blocks): task (r, c) reads (r, c−1) and (r−1, c+1) and updates
/// its own block. Used by tests and by the quickstart example.
pub fn wavefront(rows: u64, cols: u64, duration: SimDuration) -> Trace {
    let region = AddrRegion::benchmark_array(12);
    let mut b = TraceBuilder::new(format!("micro-wavefront-{rows}x{cols}"));
    for r in 0..rows {
        for c in 0..cols {
            let this = region.addr(r * cols + c);
            b.submit_with(|id| {
                let mut t = TaskDescriptor::builder(id.0).function(0).inout(this);
                if c > 0 {
                    t = t.input(region.addr(r * cols + c - 1));
                }
                if r > 0 && c + 1 < cols {
                    t = t.input(region.addr((r - 1) * cols + c + 1));
                }
                t.duration(duration).build()
            });
        }
    }
    b.taskwait();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn five_independent_tasks_matches_the_paper_micro_benchmark() {
        let t = five_independent_tasks();
        assert_eq!(t.task_count(), 5);
        for task in t.tasks() {
            assert_eq!(task.num_params(), 2);
        }
        // No shared addresses => all independent.
        let mut seen = std::collections::HashSet::new();
        for task in t.tasks() {
            for p in &task.params {
                assert!(seen.insert(p.addr));
            }
        }
    }

    #[test]
    fn chain_tasks_share_one_address() {
        let t = chain(10, SimDuration::from_us(2));
        assert_eq!(t.task_count(), 10);
        let addrs: std::collections::HashSet<u64> = t
            .tasks()
            .flat_map(|t| t.params.iter().map(|p| p.addr))
            .collect();
        assert_eq!(addrs.len(), 1);
        assert_eq!(t.total_work(), SimDuration::from_us(20));
    }

    #[test]
    fn fork_join_shape() {
        let t = fork_join(8, SimDuration::from_us(1));
        assert_eq!(t.task_count(), 10); // producer + 8 + joiner
        let s = TraceStats::of(&t);
        assert_eq!(s.min_params, 1);
        assert_eq!(s.max_params, 2);
    }

    #[test]
    fn wavefront_counts() {
        let t = wavefront(4, 6, SimDuration::from_us(3));
        assert_eq!(t.task_count(), 24);
        let s = TraceStats::of(&t);
        assert_eq!(s.min_params, 1); // block (0,0)
        assert_eq!(s.max_params, 3);
        t.validate().unwrap();
    }

    #[test]
    fn single_task_param_count_is_clamped() {
        let t = single_task(0, SimDuration::from_us(1));
        assert_eq!(t.tasks().next().unwrap().num_params(), 1);
        let t4 = single_task(4, SimDuration::from_us(1));
        assert_eq!(t4.tasks().next().unwrap().num_params(), 4);
    }
}
