//! rot-cc: image rotation + colour conversion from the Starbench suite.
//!
//! "For rot-cc there are two tasks per line, one for rotation and one for color
//! conversion, with the second depending on the first. All pairs are independent
//! from each other." (§V-A).
//!
//! Table II: 16262 tasks, 8150 ms total work, 501 µs average task, 1 dep.

use crate::addr::AddrRegion;
use crate::task::TaskDescriptor;
use crate::trace::{Trace, TraceBuilder};
use nexus_sim::SimRng;

/// Number of image lines in the full-size trace; two tasks per line gives the
/// 16262 tasks of Table II.
pub const LINES: u64 = 8131;
/// Average task duration in microseconds (Table II).
pub const AVG_TASK_US: f64 = 501.0;

/// Generates the rot-cc trace. `scale` shrinks the number of image lines.
pub fn generate(seed: u64, scale: f64) -> Trace {
    let lines = ((LINES as f64 * scale).round() as u64).max(1);
    let mut rng = SimRng::new(seed ^ 0x0407_CC00);
    let mut b = TraceBuilder::new("rot-cc");
    // One buffer per rotated line; the colour-conversion task updates it in place,
    // so both tasks of a pair use the same single parameter (1 dep in Table II).
    let rotated = AddrRegion::benchmark_array(1);

    for line in 0..lines {
        let line_addr = rotated.addr(line);
        // Rotation is slightly more expensive than colour conversion; both are
        // around the 0.5 ms average of Table II.
        let rot_us = AVG_TASK_US * rng.uniform(0.95, 1.25);
        let cc_us = AVG_TASK_US * rng.uniform(0.75, 1.05);
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .function(0) // rotate
                .output(line_addr)
                .duration_us(rot_us)
                .build()
        });
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .function(1) // colour-convert
                .inout(line_addr)
                .duration_us(cc_us)
                .build()
        });
    }
    b.taskwait();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;
    use crate::task::Direction;

    #[test]
    fn full_trace_matches_table2_row() {
        let t = generate(7, 1.0);
        let s = TraceStats::of(&t);
        assert_eq!(s.tasks, 16262);
        assert_eq!(s.deps_column(), "1");
        assert!(
            (s.avg_task_us - AVG_TASK_US).abs() / AVG_TASK_US < 0.05,
            "{}",
            s.avg_task_us
        );
        assert!(
            (s.total_work_ms - 8150.0).abs() / 8150.0 < 0.10,
            "{}",
            s.total_work_ms
        );
        t.validate().unwrap();
    }

    #[test]
    fn pairs_share_an_address_and_are_ordered() {
        let t = generate(3, 0.05);
        let tasks: Vec<_> = t.tasks().collect();
        assert_eq!(tasks.len() % 2, 0);
        for pair in tasks.chunks(2) {
            let rot = pair[0];
            let cc = pair[1];
            assert_eq!(rot.params.len(), 1);
            assert_eq!(cc.params.len(), 1);
            assert_eq!(rot.params[0].addr, cc.params[0].addr);
            assert_eq!(rot.params[0].dir, Direction::Out);
            assert_eq!(cc.params[0].dir, Direction::InOut);
        }
    }

    #[test]
    fn different_pairs_use_different_addresses() {
        let t = generate(3, 0.05);
        let addrs: std::collections::HashSet<u64> =
            t.tasks().map(|task| task.params[0].addr).collect();
        assert_eq!(addrs.len(), t.task_count() / 2);
    }
}
