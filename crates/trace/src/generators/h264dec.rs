//! h264dec: H.264 macroblock wavefront decoding (Starbench), the paper's
//! headline fine-grained benchmark.
//!
//! "The H.264 decoder … can be configured to run with variable granularity by
//! setting the number of macroblocks that are processed by one task. At the
//! extreme, a new task is created for each macroblock. This fine-grain
//! parallelism is especially challenging to manage." (§V-A). The input is 10
//! full-HD frames (1920 × 1088 → 120 × 68 macroblocks of 16 × 16 pixels) of the
//! `pedestrian_area.h264` stream.
//!
//! Dependency pattern (Listing 1 / §II-A): decoding macroblock (r, c) requires
//! the left neighbour (r, c−1) and the up-right neighbour (r−1, c+1), giving the
//! classic wavefront. In addition each task reads the co-located region of the
//! previous (reference) frame (motion compensation), and the tasks of a row read
//! the row's entropy-decode output, which is produced by a serial per-row
//! entropy chain. This yields the 2–6 parameter range of Table II.
//!
//! The benchmark is also the paper's showcase for the `taskwait on` pragma: the
//! master waits on the co-located row of the reference frame before submitting a
//! row of the current frame. Nexus++ lacks `taskwait on` support and escalates
//! each of these waits to a full `taskwait`, which is why it cannot scale on
//! this benchmark (§VI).

use crate::addr::{addr_2d, AddrRegion};
use crate::generators::MbGrouping;
use crate::task::TaskDescriptor;
use crate::trace::{Trace, TraceBuilder};
use nexus_sim::SimRng;

/// Macroblock columns of a 1920-pixel-wide frame.
pub const MB_COLS: u64 = 120;
/// Macroblock rows of a 1088-pixel-high frame.
pub const MB_ROWS: u64 = 68;
/// Number of frames in the full-size trace.
pub const FRAMES: u64 = 10;

/// Dimensions of the task grid for a given grouping.
fn task_grid(group: MbGrouping, rows: u64, cols: u64) -> (u64, u64) {
    let g = group.factor() as u64;
    (rows.div_ceil(g), cols.div_ceil(g))
}

/// Generates the h264dec trace for the given macroblock grouping.
/// `scale` shrinks the number of frames (and, below 1 frame, the frame size).
pub fn generate(group: MbGrouping, seed: u64, scale: f64) -> Trace {
    let (frames, mb_rows, mb_cols) = if scale >= 0.1 {
        (
            ((FRAMES as f64 * scale).round() as u64).max(1),
            MB_ROWS,
            MB_COLS,
        )
    } else {
        // Sub-frame scaling for unit tests: a single shrunken frame.
        let shrink = (scale * 10.0).sqrt().clamp(0.05, 1.0);
        (
            1,
            ((MB_ROWS as f64 * shrink).round() as u64).max(4),
            ((MB_COLS as f64 * shrink).round() as u64).max(4),
        )
    };
    let (rows, cols) = task_grid(group, mb_rows, mb_cols);
    let avg_us = group.paper_avg_task_us();
    let mut rng = SimRng::new(seed ^ 0x2640_0000 ^ group.factor() as u64);
    let mut b = TraceBuilder::new(format!("h264dec-{group}-10f"));

    // One decoded-picture buffer region per frame, plus one entropy-row region
    // per frame, plus one bitstream-cursor word per frame (the CABAC state that
    // serializes entropy decoding within a frame).
    let frame_regions: Vec<AddrRegion> = (0..frames)
        .map(|f| AddrRegion::benchmark_array(10 + f))
        .collect();
    let entropy_regions: Vec<AddrRegion> = (0..frames)
        .map(|f| AddrRegion::benchmark_array(30 + f))
        .collect();
    let cursors = AddrRegion::benchmark_array(50);

    for f in 0..frames as usize {
        for r in 0..rows {
            // The master needs the co-located row of the reference frame before
            // it can set up motion-compensation for this row: `taskwait on`.
            if f > 0 {
                let ref_addr = addr_2d(&frame_regions[f - 1], r, cols - 1, cols);
                b.taskwait_on(ref_addr);
            }
            // Serial entropy decoding of the row (CABAC/CAVLC is sequential):
            // rows of a frame are chained through the frame's bitstream cursor.
            let entropy_addr = entropy_regions[f].addr(r);
            let cursor_addr = cursors.addr(f as u64);
            let entropy_dur = avg_us * 2.5 * rng.uniform(0.9, 1.1);
            b.submit_with(|id| {
                TaskDescriptor::builder(id.0)
                    .function(1)
                    .output(entropy_addr)
                    .inout(cursor_addr)
                    .duration_us(entropy_dur)
                    .build()
            });

            for c in 0..cols {
                let this = addr_2d(&frame_regions[f], r, c, cols);
                let dur = avg_us * rng.uniform(0.75, 1.25);
                b.submit_with(|id| {
                    let mut t = TaskDescriptor::builder(id.0)
                        .function(0)
                        .inout(this)
                        .input(entropy_addr);
                    if c > 0 {
                        t = t.input(addr_2d(&frame_regions[f], r, c - 1, cols));
                    }
                    if r > 0 && c + 1 < cols {
                        t = t.input(addr_2d(&frame_regions[f], r - 1, c + 1, cols));
                    }
                    if r > 0 && c > 0 {
                        // Up-left neighbour (intra prediction).
                        t = t.input(addr_2d(&frame_regions[f], r - 1, c - 1, cols));
                    }
                    if f > 0 {
                        // Motion compensation from the co-located reference block.
                        t = t.input(addr_2d(&frame_regions[f - 1], r, c, cols));
                    }
                    t.duration_us(dur).build()
                });
            }
        }
    }
    b.taskwait();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn full_1x1_trace_shape() {
        let t = generate(MbGrouping::G1x1, 3, 1.0);
        let s = TraceStats::of(&t);
        // 10 frames x (8160 decode + 68 entropy) = 82280 tasks.
        assert_eq!(s.tasks, FRAMES * (MB_ROWS * MB_COLS + MB_ROWS));
        assert_eq!(s.deps_column(), "2-6");
        // Average dominated by the decode tasks at ~4.6 us (entropy tasks are
        // rare); allow 10%.
        assert!(
            (s.avg_task_us - 4.6).abs() / 4.6 < 0.10,
            "avg {}",
            s.avg_task_us
        );
        // The master issues one taskwait-on per row of every non-first frame.
        assert_eq!(s.taskwait_ons, (FRAMES - 1) * MB_ROWS);
        assert_eq!(s.taskwaits, 1);
        t.validate().unwrap();
    }

    #[test]
    fn grouping_reduces_task_count_and_increases_size() {
        let fine = generate(MbGrouping::G1x1, 3, 0.2);
        let coarse = generate(MbGrouping::G8x8, 3, 0.2);
        assert!(coarse.task_count() * 30 < fine.task_count());
        let sf = TraceStats::of(&fine);
        let sc = TraceStats::of(&coarse);
        assert!(sc.avg_task_us > 30.0 * sf.avg_task_us / 2.0);
        assert!(
            (sc.avg_task_us - 189.9).abs() / 189.9 < 0.15,
            "avg {}",
            sc.avg_task_us
        );
    }

    #[test]
    fn full_8x8_task_count_matches_grid() {
        let t = generate(MbGrouping::G8x8, 3, 1.0);
        let rows = MB_ROWS.div_ceil(8);
        let cols = MB_COLS.div_ceil(8);
        assert_eq!(t.task_count() as u64, FRAMES * (rows * cols + rows));
    }

    #[test]
    fn wavefront_dependencies_reference_earlier_tasks_only() {
        // Every `in` address must have been written (out/inout) by an earlier
        // task or belong to the entropy/reference regions written earlier.
        let t = generate(MbGrouping::G4x4, 3, 0.1);
        let mut written = std::collections::HashSet::new();
        for task in t.tasks() {
            for p in task
                .params
                .iter()
                .filter(|p| p.dir.reads() && !p.dir.writes())
            {
                assert!(
                    written.contains(&p.addr),
                    "{} reads address {:x} that was never produced",
                    task.id,
                    p.addr
                );
            }
            for p in task.params.iter().filter(|p| p.dir.writes()) {
                written.insert(p.addr);
            }
        }
    }

    #[test]
    fn sub_frame_scaling_produces_tiny_valid_traces() {
        let t = generate(MbGrouping::G1x1, 3, 0.01);
        assert!(t.task_count() > 10);
        assert!(t.task_count() < 3000);
        t.validate().unwrap();
    }
}
