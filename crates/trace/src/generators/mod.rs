//! Synthetic workload generators for every benchmark in the paper's evaluation.
//!
//! Each generator reproduces the *dependency pattern*, *parameter counts* and
//! *duration distribution* described in §V-A (Table II, Table III, Fig. 6) of
//! the paper. Generation is fully deterministic given the seed, so the
//! benchmark harness regenerates identical tables on every run.

pub mod cray;
pub mod distributed;
pub mod gaussian;
pub mod h264dec;
pub mod micro;
pub mod rotcc;
pub mod sparselu;
pub mod streamcluster;

use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Macroblock grouping factor for the h264dec benchmark: `g × g` macroblocks
/// are decoded by one task (§V-A / §VI, Fig. 7 and Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MbGrouping {
    /// One macroblock per task — the finest granularity (4.6 µs average task).
    G1x1,
    /// 2×2 macroblocks per task (≈15.3 µs average task).
    G2x2,
    /// 4×4 macroblocks per task (≈55.6 µs average task).
    G4x4,
    /// 8×8 macroblocks per task (≈189.9 µs average task).
    G8x8,
}

impl MbGrouping {
    /// Side length of the macroblock group.
    pub fn factor(self) -> u32 {
        match self {
            MbGrouping::G1x1 => 1,
            MbGrouping::G2x2 => 2,
            MbGrouping::G4x4 => 4,
            MbGrouping::G8x8 => 8,
        }
    }

    /// All four groupings evaluated in the paper.
    pub fn all() -> [MbGrouping; 4] {
        [
            MbGrouping::G1x1,
            MbGrouping::G2x2,
            MbGrouping::G4x4,
            MbGrouping::G8x8,
        ]
    }

    /// The average task size the paper reports for this grouping (Table II).
    pub fn paper_avg_task_us(self) -> f64 {
        match self {
            MbGrouping::G1x1 => 4.6,
            MbGrouping::G2x2 => 15.3,
            MbGrouping::G4x4 => 55.6,
            MbGrouping::G8x8 => 189.9,
        }
    }
}

impl std::fmt::Display for MbGrouping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MbGrouping::G1x1 => "1x1",
            MbGrouping::G2x2 => "2x2",
            MbGrouping::G4x4 => "4x4",
            MbGrouping::G8x8 => "8x8",
        };
        f.write_str(s)
    }
}

/// The benchmarks of the paper's evaluation section.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Benchmark {
    /// c-ray: ray tracing, one independent ~6.2 ms task per image line.
    CRay,
    /// rot-cc: image rotation + colour conversion, two chained ~0.5 ms tasks per line.
    RotCc,
    /// sparselu: blocked sparse LU factorization (lu0/fwd/bdiv/bmod task graph).
    SparseLu,
    /// streamcluster: fork-join chains of ~400-task groups separated by taskwaits.
    Streamcluster,
    /// h264dec: macroblock wavefront decoding of 10 full-HD frames with the
    /// given macroblock grouping.
    H264Dec(MbGrouping),
    /// Gaussian elimination with partial pivoting on an `n × n` matrix
    /// (Fig. 6 / Table III / Fig. 9).
    Gaussian {
        /// Matrix dimension.
        dim: u32,
    },
}

impl Benchmark {
    /// Canonical benchmark name used in tables and reports (matches the paper).
    pub fn name(&self) -> String {
        match self {
            Benchmark::CRay => "c-ray".to_string(),
            Benchmark::RotCc => "rot-cc".to_string(),
            Benchmark::SparseLu => "sparselu".to_string(),
            Benchmark::Streamcluster => "streamcluster".to_string(),
            Benchmark::H264Dec(g) => format!("h264dec-{g}-10f"),
            Benchmark::Gaussian { dim } => format!("gaussian-{dim}"),
        }
    }

    /// Generates the full-size trace for this benchmark (sizes per Table II /
    /// Table III), deterministically from `seed`.
    pub fn trace(&self, seed: u64) -> Trace {
        self.trace_scaled(seed, 1.0)
    }

    /// Generates a size-scaled trace: `scale` multiplies the task count (by
    /// shrinking the input: fewer lines, fewer frames, fewer groups, a smaller
    /// matrix) while keeping the per-task durations and the dependency pattern.
    /// Used by the quick benchmark mode and by tests. `scale` is clamped to
    /// `(0, 1]`.
    pub fn trace_scaled(&self, seed: u64, scale: f64) -> Trace {
        let scale = if scale.is_finite() {
            scale.clamp(1e-4, 1.0)
        } else {
            1.0
        };
        match self {
            Benchmark::CRay => cray::generate(seed, scale),
            Benchmark::RotCc => rotcc::generate(seed, scale),
            Benchmark::SparseLu => sparselu::generate(seed, scale),
            Benchmark::Streamcluster => streamcluster::generate(seed, scale),
            Benchmark::H264Dec(g) => h264dec::generate(*g, seed, scale),
            Benchmark::Gaussian { dim } => {
                let dim = ((*dim as f64 * scale.sqrt()).round() as u32).max(8);
                gaussian::generate(dim)
            }
        }
    }

    /// The eight rows of Table II, in the paper's order.
    pub fn table2_suite() -> Vec<Benchmark> {
        vec![
            Benchmark::CRay,
            Benchmark::RotCc,
            Benchmark::SparseLu,
            Benchmark::Streamcluster,
            Benchmark::H264Dec(MbGrouping::G1x1),
            Benchmark::H264Dec(MbGrouping::G2x2),
            Benchmark::H264Dec(MbGrouping::G4x4),
            Benchmark::H264Dec(MbGrouping::G8x8),
        ]
    }

    /// The matrix sizes of Table III / Fig. 9.
    pub fn gaussian_suite() -> Vec<Benchmark> {
        vec![
            Benchmark::Gaussian { dim: 250 },
            Benchmark::Gaussian { dim: 500 },
            Benchmark::Gaussian { dim: 1000 },
            Benchmark::Gaussian { dim: 3000 },
        ]
    }
}

/// The standard Table II benchmark suite (the eight traces of Fig. 8).
pub fn standard_suite() -> Vec<Benchmark> {
    Benchmark::table2_suite()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_paper() {
        assert_eq!(Benchmark::CRay.name(), "c-ray");
        assert_eq!(
            Benchmark::H264Dec(MbGrouping::G2x2).name(),
            "h264dec-2x2-10f"
        );
        assert_eq!(Benchmark::Gaussian { dim: 250 }.name(), "gaussian-250");
    }

    #[test]
    fn suites_have_expected_sizes() {
        assert_eq!(Benchmark::table2_suite().len(), 8);
        assert_eq!(Benchmark::gaussian_suite().len(), 4);
        assert_eq!(standard_suite().len(), 8);
    }

    #[test]
    fn grouping_metadata() {
        assert_eq!(MbGrouping::G1x1.factor(), 1);
        assert_eq!(MbGrouping::G8x8.factor(), 8);
        assert_eq!(MbGrouping::all().len(), 4);
        assert_eq!(MbGrouping::G4x4.to_string(), "4x4");
        assert!((MbGrouping::G2x2.paper_avg_task_us() - 15.3).abs() < 1e-9);
    }

    #[test]
    fn scaled_traces_are_smaller_and_valid() {
        for b in [
            Benchmark::CRay,
            Benchmark::RotCc,
            Benchmark::Streamcluster,
            Benchmark::H264Dec(MbGrouping::G8x8),
        ] {
            let small = b.trace_scaled(1, 0.05);
            let larger = b.trace_scaled(1, 0.2);
            assert!(small.task_count() > 0, "{}", b.name());
            assert!(
                small.task_count() < larger.task_count(),
                "{}: {} !< {}",
                b.name(),
                small.task_count(),
                larger.task_count()
            );
            small.validate().unwrap();
        }
    }

    #[test]
    fn scale_is_clamped() {
        let t = Benchmark::CRay.trace_scaled(1, 50.0);
        assert_eq!(
            t.task_count(),
            Benchmark::CRay.trace_scaled(1, 1.0).task_count()
        );
        let tiny = Benchmark::Gaussian { dim: 250 }.trace_scaled(1, 0.0);
        assert!(tiny.task_count() > 0);
    }
}
