//! Gaussian elimination with partial pivoting (Fig. 6, Table III, Fig. 9).
//!
//! "To validate the dummy tasks/entries approach, the task graph of Gaussian
//! elimination with partial pivoting is used. In this benchmark, the number of
//! tasks that depend on a certain memory segment depends on the size of the
//! input matrix" (§V-A). The dependency pattern of Fig. 6 is a triangular
//! wavefront: elimination wave `i` consists of the pivot task `T_i^i` followed
//! by the row-update tasks `T_i^j` (`j > i`), each of which reads the pivot row
//! `R_i` and updates its own row `R_j`.
//!
//! Task counts therefore equal `n(n+1)/2 − 1`, matching Table III exactly
//! (31 374 / 125 249 / 500 499 / 4 501 499 for n = 250/500/1000/3000).
//!
//! Task weights: the paper assumes 2 GFLOPS worker cores, so a task with `w`
//! FLOPs takes `w / 2000` µs. We assign `w(T_i^j) = n − i + 1`, whose average
//! over the whole graph is ≈ 2n/3, reproducing the "average task weight" column
//! of Table III (167 / 334 / 667 / 2000 FLOPs).

use crate::addr::AddrRegion;
use crate::task::TaskDescriptor;
use crate::trace::{Trace, TraceBuilder};

/// Worker-core throughput assumed by the paper for this benchmark (FLOP/µs).
pub const FLOPS_PER_US: f64 = 2000.0;

/// Number of tasks the pattern generates for an `n × n` matrix.
pub fn task_count(n: u64) -> u64 {
    n * (n + 1) / 2 - 1
}

/// Average task weight in FLOPs for an `n × n` matrix (Table III column).
pub fn average_flops(n: u64) -> f64 {
    let mut total = 0u64;
    for i in 1..n {
        // Wave i has (n - i + 1) tasks each of weight (n - i + 1).
        let w = n - i + 1;
        total += w * w;
    }
    total as f64 / task_count(n) as f64
}

/// Generates the Gaussian-elimination trace for an `n × n` matrix.
///
/// The submission order follows the waves of Fig. 6 (`T_1^1, T_1^2 … T_1^n,
/// T_2^2 … T_2^n, …`), so the first ready task is `T_1^1` and the following
/// `n − 1` tasks all wait on the same pivot row — the long kick-off lists the
/// benchmark is designed to exercise.
pub fn generate(n: u32) -> Trace {
    let n = n.max(2) as u64;
    let mut b = TraceBuilder::new(format!("gaussian-{n}"));
    let rows = AddrRegion::benchmark_array(6);
    let row_addr = |r: u64| rows.addr(r);

    for i in 1..n {
        let weight = (n - i + 1) as f64;
        let dur_us = weight / FLOPS_PER_US;
        // Pivot task T_i^i: selects the pivot and normalizes row i.
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .function(0)
                .inout(row_addr(i))
                .duration_us(dur_us)
                .build()
        });
        // Row-update tasks T_i^j: eliminate column i from row j using row i.
        for j in (i + 1)..=n {
            b.submit_with(|id| {
                TaskDescriptor::builder(id.0)
                    .function(1)
                    .input(row_addr(i))
                    .inout(row_addr(j))
                    .duration_us(dur_us)
                    .build()
            });
        }
    }
    b.taskwait();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn task_counts_match_table3_exactly() {
        assert_eq!(task_count(250), 31_374);
        assert_eq!(task_count(500), 125_249);
        assert_eq!(task_count(1000), 500_499);
        assert_eq!(task_count(3000), 4_501_499);
        let t = generate(250);
        assert_eq!(t.task_count() as u64, 31_374);
    }

    #[test]
    fn average_weight_matches_table3() {
        // Table III: 167 / 334 / 667 / 2012 FLOPs.
        assert!(
            (average_flops(250) - 167.0).abs() < 2.0,
            "{}",
            average_flops(250)
        );
        assert!(
            (average_flops(500) - 334.0).abs() < 3.0,
            "{}",
            average_flops(500)
        );
        assert!(
            (average_flops(1000) - 667.0).abs() < 5.0,
            "{}",
            average_flops(1000)
        );
        assert!(
            (average_flops(3000) - 2012.0).abs() < 20.0,
            "{}",
            average_flops(3000)
        );
    }

    #[test]
    fn durations_follow_the_2gflops_assumption() {
        let t = generate(250);
        let s = TraceStats::of(&t);
        // Table III: 0.084 us average task weight for n = 250.
        assert!((s.avg_task_us - 0.084).abs() < 0.003, "{}", s.avg_task_us);
        assert_eq!(s.deps_column(), "1-2");
    }

    #[test]
    fn first_wave_all_waits_on_the_pivot_row() {
        let n = 50u64;
        let t = generate(n as u32);
        let tasks: Vec<_> = t.tasks().collect();
        // First task is the pivot with a single inout parameter.
        assert_eq!(tasks[0].num_params(), 1);
        let pivot_addr = tasks[0].params[0].addr;
        // The next n-1 tasks all read that same address (the long kick-off list).
        for task in &tasks[1..n as usize] {
            assert!(task
                .params
                .iter()
                .any(|p| p.addr == pivot_addr && !p.dir.writes()));
        }
    }

    #[test]
    fn wave_structure_has_decreasing_width() {
        let t = generate(10);
        // Waves: wave i has (n - i + 1) tasks, i = 1..n-1 => widths 10, 9, ..., 2.
        let widths: Vec<u64> = (1..10u64).map(|i| 10 - i + 1).collect();
        assert_eq!(widths.iter().sum::<u64>(), t.task_count() as u64);
    }

    #[test]
    fn tiny_matrix_is_clamped() {
        let t = generate(1);
        assert!(t.task_count() > 0);
        t.validate().unwrap();
    }
}
