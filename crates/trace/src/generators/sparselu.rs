//! sparselu: blocked sparse LU matrix factorization (the OmpSs developers'
//! benchmark).
//!
//! "sparselu is a sparse matrix LU factorization kernel from the developers of
//! OmpSs. It scales well, as the granularity is designed to match Nanos
//! overheads." (§V-A). Table II: 54814 tasks, 38128 ms total work, 696 µs
//! average task, 1–3 deps.
//!
//! The task graph is the classic blocked right-looking LU factorization over an
//! `NB × NB` grid of blocks:
//!
//! * `lu0(k)`      — factorize diagonal block `(k,k)`              (`inout B[k][k]`)
//! * `fwd(k,j)`    — forward-substitute row-panel block `(k,j)`    (`in B[k][k]`, `inout B[k][j]`)
//! * `bdiv(k,i)`   — divide column-panel block `(i,k)`             (`in B[k][k]`, `inout B[i][k]`)
//! * `bmod(k,i,j)` — trailing-matrix update of block `(i,j)`       (`in B[i][k]`, `in B[k][j]`, `inout B[i][j]`)
//!
//! With `NB = 54` the dense graph has 53 955 tasks, within 1.6 % of the paper's
//! 54 814 (the real benchmark skips empty blocks but also factorizes a slightly
//! larger matrix; see DESIGN.md §6).

use crate::addr::{addr_2d, AddrRegion};
use crate::task::TaskDescriptor;
use crate::trace::{Trace, TraceBuilder};
use nexus_sim::SimRng;

/// Number of blocks per matrix dimension in the full-size trace.
pub const BLOCKS: u64 = 54;
/// Average task duration in microseconds (Table II).
pub const AVG_TASK_US: f64 = 696.0;

/// Task kinds of the blocked LU factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Lu0,
    Fwd,
    Bdiv,
    Bmod,
}

fn duration_us(kind: Kind, rng: &mut SimRng) -> f64 {
    // The update kernels (bmod) dominate; calibrated so the overall average
    // lands on the paper's 696 us.
    let (base, jitter) = match kind {
        Kind::Lu0 => (760.0, 0.10),
        Kind::Fwd => (640.0, 0.10),
        Kind::Bdiv => (640.0, 0.10),
        Kind::Bmod => (700.0, 0.08),
    };
    base * rng.uniform(1.0 - jitter, 1.0 + jitter)
}

/// Generates the sparselu trace. `scale` shrinks the number of blocks per
/// dimension (task count shrinks roughly with the cube).
pub fn generate(seed: u64, scale: f64) -> Trace {
    let nb = ((BLOCKS as f64 * scale.cbrt()).round() as u64).clamp(3, BLOCKS);
    let mut rng = SimRng::new(seed ^ 0x5AA5_E100);
    let mut b = TraceBuilder::new("sparselu");
    let blocks = AddrRegion::benchmark_array(2);
    let baddr = |i: u64, j: u64| addr_2d(&blocks, i, j, nb);

    for k in 0..nb {
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .function(0)
                .inout(baddr(k, k))
                .duration_us(duration_us(Kind::Lu0, &mut rng))
                .build()
        });
        for j in (k + 1)..nb {
            b.submit_with(|id| {
                TaskDescriptor::builder(id.0)
                    .function(1)
                    .input(baddr(k, k))
                    .inout(baddr(k, j))
                    .duration_us(duration_us(Kind::Fwd, &mut rng))
                    .build()
            });
        }
        for i in (k + 1)..nb {
            b.submit_with(|id| {
                TaskDescriptor::builder(id.0)
                    .function(2)
                    .input(baddr(k, k))
                    .inout(baddr(i, k))
                    .duration_us(duration_us(Kind::Bdiv, &mut rng))
                    .build()
            });
        }
        for i in (k + 1)..nb {
            for j in (k + 1)..nb {
                b.submit_with(|id| {
                    TaskDescriptor::builder(id.0)
                        .function(3)
                        .input(baddr(i, k))
                        .input(baddr(k, j))
                        .inout(baddr(i, j))
                        .duration_us(duration_us(Kind::Bmod, &mut rng))
                        .build()
                });
            }
        }
    }
    b.taskwait();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    /// Expected dense task count for `nb` blocks.
    fn expected_tasks(nb: u64) -> u64 {
        let mut total = 0;
        for k in 0..nb {
            let m = nb - k - 1;
            total += 1 + 2 * m + m * m;
        }
        total
    }

    #[test]
    fn full_trace_is_close_to_table2_row() {
        let t = generate(11, 1.0);
        let s = TraceStats::of(&t);
        assert_eq!(s.tasks, expected_tasks(BLOCKS));
        // Within 2% of the paper's 54814 tasks.
        assert!(
            (s.tasks as f64 - 54814.0).abs() / 54814.0 < 0.02,
            "{}",
            s.tasks
        );
        assert_eq!(s.deps_column(), "1-3");
        assert!(
            (s.avg_task_us - AVG_TASK_US).abs() / AVG_TASK_US < 0.05,
            "{}",
            s.avg_task_us
        );
        assert!(
            (s.total_work_ms - 38128.0).abs() / 38128.0 < 0.10,
            "{}",
            s.total_work_ms
        );
        t.validate().unwrap();
    }

    #[test]
    fn small_instance_has_expected_structure() {
        let nb = 4u64;
        let t = generate(1, ((nb as f64) / (BLOCKS as f64)).powi(3));
        assert_eq!(t.task_count() as u64, expected_tasks(nb));
        // First task is the lu0 of block (0,0) and the only single-parameter task
        // of the first wave; bmod tasks have exactly 3 parameters.
        let tasks: Vec<_> = t.tasks().collect();
        assert_eq!(tasks[0].num_params(), 1);
        let max_params = tasks.iter().map(|t| t.num_params()).max().unwrap();
        assert_eq!(max_params, 3);
    }

    #[test]
    fn deterministic() {
        let a = generate(5, 0.02);
        let b = generate(5, 0.02);
        assert_eq!(a.ops, b.ops);
    }
}
