//! Arrival overlays: open-loop submission timestamps layered over a trace.
//!
//! A closed-loop trace has no notion of *when* a task is offered — the master
//! submits as fast as the pipeline allows. Service-mode (open-loop) runs
//! instead drive submissions from an arrival process: one timestamp per task
//! submission, in program order. [`ArrivalOverlay`] is that timestamp layer,
//! kept separate from [`Trace`] so the same trace can be
//! replayed closed-loop or under any arrival process without regeneration.
//!
//! The overlay is aligned with the trace's *submission order* (the i-th time
//! belongs to the i-th `Submit` op). Because the master emits submissions in
//! program order and the per-node input queues are FIFO, a nondecreasing
//! overlay automatically preserves per-node program order — [`new`] therefore
//! rejects decreasing sequences instead of trusting every generator.
//!
//! [`new`]: ArrivalOverlay::new

use crate::trace::Trace;
use nexus_sim::SimTime;

/// One arrival timestamp per task submission of a trace, nondecreasing, in
/// submission (program) order. Built by open-loop generators such as
/// `nexus-flow`'s arrival processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalOverlay {
    times: Vec<SimTime>,
}

impl ArrivalOverlay {
    /// Wraps a nondecreasing sequence of arrival times. Returns a description
    /// of the first inversion otherwise (an inverted overlay would reorder
    /// submissions against program order).
    pub fn new(times: Vec<SimTime>) -> Result<ArrivalOverlay, String> {
        for (i, pair) in times.windows(2).enumerate() {
            if pair[1] < pair[0] {
                return Err(format!(
                    "arrival times must be nondecreasing: times[{}] = {} after times[{}] = {}",
                    i + 1,
                    pair[1],
                    i,
                    pair[0]
                ));
            }
        }
        Ok(ArrivalOverlay { times })
    }

    /// Number of arrival timestamps (must equal the trace's submission count).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the overlay carries no timestamps.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The arrival time of the i-th submission.
    pub fn time(&self, i: usize) -> SimTime {
        self.times[i]
    }

    /// All arrival times, in submission order.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Consumes the overlay into its raw timestamp vector.
    pub fn into_times(self) -> Vec<SimTime> {
        self.times
    }

    /// Checks that the overlay covers exactly the submissions of `trace`.
    pub fn matches(&self, trace: &Trace) -> Result<(), String> {
        let tasks = trace.task_count();
        if self.times.len() != tasks {
            return Err(format!(
                "arrival overlay covers {} submissions but trace {:?} has {tasks}",
                self.times.len(),
                trace.name
            ));
        }
        Ok(())
    }

    /// Time of the last arrival ([`SimTime::ZERO`] when empty) — the span of
    /// the offered load.
    pub fn span(&self) -> SimTime {
        self.times.last().copied().unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskDescriptor;
    use crate::trace::TraceBuilder;
    use nexus_sim::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn accepts_nondecreasing_and_rejects_inversions() {
        let ok = ArrivalOverlay::new(vec![t(0), t(5), t(5), t(9)]).unwrap();
        assert_eq!(ok.len(), 4);
        assert_eq!(ok.time(3), t(9));
        assert_eq!(ok.span(), t(9));
        let err = ArrivalOverlay::new(vec![t(5), t(3)]).unwrap_err();
        assert!(err.contains("nondecreasing"), "{err}");
    }

    #[test]
    fn matches_checks_the_submission_count() {
        let mut b = TraceBuilder::new("overlay-unit");
        b.submit_with(|id| {
            TaskDescriptor::builder(id.0)
                .inout(0x100)
                .duration(SimDuration::from_us(10))
                .build()
        });
        b.taskwait();
        let trace = b.finish();
        assert!(ArrivalOverlay::new(vec![t(1)])
            .unwrap()
            .matches(&trace)
            .is_ok());
        let err = ArrivalOverlay::new(vec![t(1), t(2)])
            .unwrap()
            .matches(&trace)
            .unwrap_err();
        assert!(err.contains("has 1"), "{err}");
    }

    #[test]
    fn empty_overlay_is_well_formed() {
        let o = ArrivalOverlay::new(Vec::new()).unwrap();
        assert!(o.is_empty());
        assert_eq!(o.span(), SimTime::ZERO);
        assert_eq!(o.times(), &[]);
    }
}
