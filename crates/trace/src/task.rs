//! Task descriptors: the unit of work exchanged between the runtime system and
//! the task managers.
//!
//! A task is a function call annotated with `#pragma omp task input(...)
//! output(...) inout(...)`. The runtime turns the call into a *task descriptor*
//! carrying the function pointer, the list of parameter memory addresses with
//! their access direction, and (in the trace-driven evaluation) the measured
//! execution time of the task body.

use nexus_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a submitted task. Unique within a trace / a run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TaskId(pub u64);

impl TaskId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of the task function (the "function pointer" stored in the
/// Function Pointers table of Nexus#).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FunctionId(pub u32);

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Access direction of a task parameter, mirroring the OmpSs pragma clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// `input(...)`: the task reads the memory region.
    In,
    /// `output(...)`: the task writes the memory region (no read of prior value).
    Out,
    /// `inout(...)`: the task reads and writes the memory region.
    InOut,
}

impl Direction {
    /// True if the parameter reads the region (In or InOut).
    #[inline]
    pub fn reads(self) -> bool {
        matches!(self, Direction::In | Direction::InOut)
    }

    /// True if the parameter writes the region (Out or InOut).
    #[inline]
    pub fn writes(self) -> bool {
        matches!(self, Direction::Out | Direction::InOut)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::In => "in",
            Direction::Out => "out",
            Direction::InOut => "inout",
        };
        f.write_str(s)
    }
}

/// One entry in a task's input/output list: a 48-bit memory address (the
/// representative address of the data region) and its direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskParam {
    /// Representative memory address of the parameter (48-bit significant).
    pub addr: u64,
    /// Access direction.
    pub dir: Direction,
}

impl TaskParam {
    /// Creates an `input(...)` parameter.
    pub fn input(addr: u64) -> Self {
        TaskParam {
            addr,
            dir: Direction::In,
        }
    }
    /// Creates an `output(...)` parameter.
    pub fn output(addr: u64) -> Self {
        TaskParam {
            addr,
            dir: Direction::Out,
        }
    }
    /// Creates an `inout(...)` parameter.
    pub fn inout(addr: u64) -> Self {
        TaskParam {
            addr,
            dir: Direction::InOut,
        }
    }
}

/// A task descriptor as submitted to a task manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDescriptor {
    /// Unique task id (assigned in submission order by the trace generator).
    pub id: TaskId,
    /// Task function.
    pub function: FunctionId,
    /// Input/output list. The paper's benchmarks have between 1 and 6 entries.
    pub params: Vec<TaskParam>,
    /// Execution time of the task body on a worker core (from the trace).
    pub duration: SimDuration,
    /// Optional placement hint for the multi-node cluster simulation: the
    /// preferred home node of the task. `None` lets the cluster driver route
    /// by address (the XOR distribution function at cluster scope). Node
    /// counts smaller than the hint wrap around (`hint % nodes`).
    pub affinity: Option<u32>,
}

impl TaskDescriptor {
    /// Creates a new descriptor.
    pub fn new(
        id: TaskId,
        function: FunctionId,
        params: Vec<TaskParam>,
        duration: SimDuration,
    ) -> Self {
        TaskDescriptor {
            id,
            function,
            params,
            duration,
            affinity: None,
        }
    }

    /// Builder-style constructor used heavily by the generators and tests.
    pub fn builder(id: u64) -> TaskBuilder {
        TaskBuilder {
            id: TaskId(id),
            function: FunctionId(0),
            params: Vec::new(),
            duration: SimDuration::ZERO,
            affinity: None,
        }
    }

    /// The home node of the task in a cluster of `nodes` nodes, if the task
    /// carries an affinity hint.
    #[inline]
    pub fn home_node(&self, nodes: usize) -> Option<usize> {
        debug_assert!(nodes > 0);
        self.affinity.map(|a| a as usize % nodes.max(1))
    }

    /// Number of parameters in the input/output list.
    #[inline]
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Iterator over parameters that read their region.
    pub fn inputs(&self) -> impl Iterator<Item = &TaskParam> {
        self.params.iter().filter(|p| p.dir.reads())
    }

    /// Iterator over parameters that write their region.
    pub fn outputs(&self) -> impl Iterator<Item = &TaskParam> {
        self.params.iter().filter(|p| p.dir.writes())
    }

    /// Number of PCIe words needed to transfer the descriptor to the hardware
    /// manager: one header word pair (function pointer + parameter count) plus
    /// two 32-bit words per 48-bit address (§IV-D of the paper).
    pub fn transfer_words(&self) -> u64 {
        2 + 2 * self.params.len() as u64
    }
}

/// Builder for [`TaskDescriptor`].
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    id: TaskId,
    function: FunctionId,
    params: Vec<TaskParam>,
    duration: SimDuration,
    affinity: Option<u32>,
}

impl TaskBuilder {
    /// Sets the task function.
    pub fn function(mut self, f: u32) -> Self {
        self.function = FunctionId(f);
        self
    }

    /// Adds an `input(...)` parameter.
    pub fn input(mut self, addr: u64) -> Self {
        self.params.push(TaskParam::input(addr));
        self
    }

    /// Adds an `output(...)` parameter.
    pub fn output(mut self, addr: u64) -> Self {
        self.params.push(TaskParam::output(addr));
        self
    }

    /// Adds an `inout(...)` parameter.
    pub fn inout(mut self, addr: u64) -> Self {
        self.params.push(TaskParam::inout(addr));
        self
    }

    /// Sets the execution duration.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Sets the execution duration in microseconds.
    pub fn duration_us(self, us: f64) -> Self {
        self.duration(SimDuration::from_us_f64(us))
    }

    /// Sets the preferred home node for the cluster simulation.
    pub fn affinity(mut self, node: u32) -> Self {
        self.affinity = Some(node);
        self
    }

    /// Finalizes the descriptor.
    pub fn build(self) -> TaskDescriptor {
        TaskDescriptor {
            id: self.id,
            function: self.function,
            params: self.params,
            duration: self.duration,
            affinity: self.affinity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_read_write_classification() {
        assert!(Direction::In.reads() && !Direction::In.writes());
        assert!(!Direction::Out.reads() && Direction::Out.writes());
        assert!(Direction::InOut.reads() && Direction::InOut.writes());
        assert_eq!(Direction::InOut.to_string(), "inout");
    }

    #[test]
    fn builder_produces_expected_descriptor() {
        let t = TaskDescriptor::builder(7)
            .function(3)
            .input(0x1000)
            .inout(0x2000)
            .output(0x3000)
            .duration_us(4.6)
            .build();
        assert_eq!(t.id, TaskId(7));
        assert_eq!(t.function, FunctionId(3));
        assert_eq!(t.num_params(), 3);
        assert_eq!(t.inputs().count(), 2); // in + inout
        assert_eq!(t.outputs().count(), 2); // inout + out
        assert_eq!(t.duration, SimDuration::from_ns(4600));
        assert_eq!(t.id.to_string(), "T7");
        assert_eq!(t.function.to_string(), "fn#3");
    }

    #[test]
    fn transfer_words_matches_paper_example() {
        // The pipeline walk-through in Fig. 4 uses a 4-parameter task:
        // 2 header words + 2 words per 48-bit address = 10 words.
        let t = TaskDescriptor::builder(0)
            .input(1)
            .input(2)
            .input(3)
            .inout(4)
            .build();
        assert_eq!(t.transfer_words(), 10);
        let one = TaskDescriptor::builder(1).inout(9).build();
        assert_eq!(one.transfer_words(), 4);
    }

    #[test]
    fn affinity_hint_wraps_around_the_node_count() {
        let t = TaskDescriptor::builder(0).inout(0x40).build();
        assert_eq!(t.affinity, None);
        assert_eq!(t.home_node(4), None);
        let t = TaskDescriptor::builder(1).inout(0x40).affinity(6).build();
        assert_eq!(t.affinity, Some(6));
        assert_eq!(t.home_node(8), Some(6));
        assert_eq!(t.home_node(4), Some(2));
        assert_eq!(t.home_node(1), Some(0));
    }

    #[test]
    fn param_constructors() {
        assert_eq!(TaskParam::input(5).dir, Direction::In);
        assert_eq!(TaskParam::output(5).dir, Direction::Out);
        assert_eq!(TaskParam::inout(5).dir, Direction::InOut);
        assert_eq!(TaskParam::inout(5).addr, 5);
    }
}
