//! Memory-address synthesis for the workload generators.
//!
//! The paper observes that "for a certain application, the memory addresses it
//! touches differ only in the lower 20 bits" (§IV-B); the XOR distribution
//! function of Nexus# exploits exactly that. [`AddrRegion`] hands out 48-bit
//! addresses that mimic this layout: a fixed high part per allocation region and
//! a dense, stride-separated low part, so the distribution-function study in
//! Fig. 3 and the ablation benches see realistic inputs.

use serde::{Deserialize, Serialize};

/// Mask of the 48 address bits the hardware manager considers.
pub const ADDR_MASK_48: u64 = (1 << 48) - 1;

/// A contiguous allocation region handing out representative parameter
/// addresses (e.g. one per image line, matrix block or macroblock row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddrRegion {
    base: u64,
    stride: u64,
    issued: u64,
}

impl AddrRegion {
    /// Creates a region starting at `base` (clamped to 48 bits) with a given
    /// stride between consecutive objects.
    ///
    /// # Panics
    /// Panics if `stride` is zero.
    pub fn new(base: u64, stride: u64) -> Self {
        assert!(stride > 0, "address stride must be non-zero");
        AddrRegion {
            base: base & ADDR_MASK_48,
            stride,
            issued: 0,
        }
    }

    /// A region laid out like a typical heap allocation of the benchmark data:
    /// 64-byte cache-line stride, with the region index selecting bits above
    /// bit 20 so that different logical arrays of the same application still
    /// share the high bits (the paper's observation).
    pub fn benchmark_array(region_index: u64) -> Self {
        // High part common to the whole application; distinct arrays are offset
        // by 1 MiB so they only differ in bits [20..24) and below.
        let base = 0x7f3a_0000_0000u64 + region_index * (1 << 20);
        AddrRegion::new(base, 64)
    }

    /// Address of the `i`-th object of the region (does not advance the cursor).
    #[inline]
    pub fn addr(&self, i: u64) -> u64 {
        (self.base + i * self.stride) & ADDR_MASK_48
    }

    /// Hands out the next address in the region.
    // Not an `Iterator`: this never ends and returns `u64` directly, and the
    // generator call-sites read better with a plain method.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let a = self.addr(self.issued);
        self.issued += 1;
        a
    }

    /// Number of addresses handed out via [`AddrRegion::next`].
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Base address of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Stride between consecutive objects.
    pub fn stride(&self) -> u64 {
        self.stride
    }
}

/// Address of a 2-D object (e.g. a macroblock or matrix block) within a region
/// laid out row-major.
pub fn addr_2d(region: &AddrRegion, row: u64, col: u64, cols: u64) -> u64 {
    region.addr(row * cols + col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_are_48_bit_and_strided() {
        let r = AddrRegion::new(0x1_2345_6789_0000, 64);
        assert_eq!(r.base() >> 48, 0, "base must be clamped to 48 bits");
        assert_eq!(r.base(), 0x2345_6789_0000);
        assert_eq!(r.addr(1) - r.addr(0), 64);
        assert_eq!(r.addr(10) - r.addr(0), 640);
    }

    #[test]
    fn next_advances_cursor() {
        let mut r = AddrRegion::new(0x1000, 8);
        assert_eq!(r.next(), 0x1000);
        assert_eq!(r.next(), 0x1008);
        assert_eq!(r.issued(), 2);
        assert_eq!(r.stride(), 8);
    }

    #[test]
    fn benchmark_arrays_share_high_bits() {
        let a = AddrRegion::benchmark_array(0);
        let b = AddrRegion::benchmark_array(5);
        // Arrays of the same application differ only in the low ~23 bits.
        assert_eq!(a.base() >> 24, b.base() >> 24);
        assert_ne!(a.base(), b.base());
    }

    #[test]
    fn addr_2d_is_row_major() {
        let r = AddrRegion::new(0, 4);
        assert_eq!(addr_2d(&r, 0, 0, 10), 0);
        assert_eq!(addr_2d(&r, 0, 3, 10), 12);
        assert_eq!(addr_2d(&r, 2, 3, 10), (2 * 10 + 3) * 4);
    }

    #[test]
    #[should_panic(expected = "stride must be non-zero")]
    fn zero_stride_rejected() {
        let _ = AddrRegion::new(0, 0);
    }
}
