//! Offline stand-in for `parking_lot`.
//!
//! The build environment cannot reach crates.io, so this crate exposes the
//! subset of the parking_lot API the workspace uses — `Mutex` (whose `lock`
//! returns a guard directly, no poisoning) and `Condvar` (whose `wait` takes
//! `&mut MutexGuard`) — implemented on top of `std::sync`. Poisoned std locks
//! are recovered transparently, matching parking_lot's poison-free semantics.
//! Swap in the real crate by deleting `vendor/parking_lot` once the registry
//! is reachable.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's poison-free `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take ownership of the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable whose `wait` reborrows the guard, parking_lot-style.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing and re-acquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(
            self.inner
                .wait(std_guard)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Wakes one blocked thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
