//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors a no-op implementation of the two derive macros the codebase uses.
//! `#[derive(Serialize, Deserialize)]` expands to nothing: the types stay
//! derivable exactly as written, and swapping in the real `serde` later is a
//! matter of deleting `vendor/` and pointing the path dependencies at the
//! registry (no source change required).

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`. Accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`. Accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
