//! Offline stand-in for `crossbeam`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! slice of crossbeam the workspace uses: `crossbeam::channel::unbounded` and
//! `crossbeam::channel::bounded`, multi-producer **multi-consumer** channels
//! (std's `mpsc::Receiver` is not cloneable, which is why the runtimes reach
//! for crossbeam), with `recv_timeout`/`try_recv` on the receiving half
//! (needed by `nexus-rt`'s manager loops and `shutdown_timeout`). The
//! implementation is a `Mutex<VecDeque>` + two `Condvar`s (data-ready and
//! space-free) with sender/receiver reference counting for disconnect
//! semantics — correct and adequate for the worker-pool fan-out here, if not
//! as fast as the real lock-free crossbeam. Swap in the real crate by deleting
//! `vendor/crossbeam` once the registry is reachable.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled when a bounded channel frees a slot (unused when
        /// `capacity` is `None`).
        space: Condvar,
        /// `Some(cap)` for bounded channels: `send` blocks while full.
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crossbeam: Debug without a `T: Debug` bound.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded MPMC channel. Cloneable: clones
    /// compete for messages (each message is delivered to exactly one).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel_with(None)
    }

    /// Creates a bounded MPMC channel of `cap` slots: [`Sender::send`] blocks
    /// while the queue is full (a zero capacity is rounded up to one slot —
    /// this stand-in has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel_with(Some(cap.max(1)))
    }

    fn channel_with<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, waking one waiting receiver. On a bounded channel
        /// this blocks while the queue is full (until a receiver frees a slot
        /// or every receiver is gone).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(cap) = self.shared.capacity {
                while queue.len() >= cap {
                    if self.shared.receivers.load(Ordering::Acquire) == 0 {
                        return Err(SendError(msg));
                    }
                    queue = self
                        .shared
                        .space
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake every blocked receiver so it can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    self.shared.space.notify_one();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocks until a message arrives, every sender is gone, or `timeout`
        /// elapses. Messages already queued are drained even after the last
        /// sender disconnected.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    self.shared.space.notify_one();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, wait) = self
                    .shared
                    .ready
                    .wait_timeout(queue, left)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
                if wait.timed_out() && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Pops a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match queue.pop_front() {
                Some(msg) => {
                    drop(queue);
                    self.shared.space.notify_one();
                    Ok(msg)
                }
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver gone: wake every sender blocked on a full
                // bounded queue so it can observe the disconnect.
                self.shared.space.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn messages_fan_out_to_competing_receivers() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            let a = std::thread::spawn(move || (0..50).filter(|_| rx.recv().is_ok()).count());
            let b = std::thread::spawn(move || (0..50).filter(|_| rx2.recv().is_ok()).count());
            assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
        }

        #[test]
        fn recv_timeout_expires_on_an_empty_channel() {
            let (tx, rx) = unbounded::<u32>();
            let t0 = Instant::now();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(t0.elapsed() >= Duration::from_millis(15));
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok(9));
        }

        #[test]
        fn recv_timeout_drains_after_disconnect() {
            let (tx, rx) = bounded::<u32>(4);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            // Queued messages survive the disconnect and drain in order;
            // only then does the disconnect become visible.
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(2));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn bounded_send_blocks_until_a_slot_frees() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t0 = Instant::now();
            let sender = std::thread::spawn(move || tx.send(3).unwrap());
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1)); // frees the slot the sender waits on
            sender.join().unwrap();
            assert!(t0.elapsed() >= Duration::from_millis(15));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn bounded_send_errors_when_every_receiver_is_gone() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let blocked = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(10));
            drop(rx);
            assert_eq!(blocked.join().unwrap(), Err(SendError(2)));
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            let (tx2, rx2) = unbounded::<u32>();
            assert_eq!(rx2.try_recv(), Err(TryRecvError::Empty));
            drop(rx2);
            assert_eq!(tx2.send(7), Err(SendError(7)));
        }
    }
}
