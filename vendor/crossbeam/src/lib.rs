//! Offline stand-in for `crossbeam`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! one piece of crossbeam the workspace uses: `crossbeam::channel::unbounded`,
//! a multi-producer **multi-consumer** channel (std's `mpsc::Receiver` is not
//! cloneable, which is why the runtime reaches for crossbeam). The
//! implementation is a `Mutex<VecDeque>` + `Condvar` queue with
//! sender/receiver reference counting for disconnect semantics — correct and
//! adequate for the worker-pool fan-out here, if not as fast as the real
//! lock-free crossbeam. Swap in the real crate by deleting `vendor/crossbeam`
//! once the registry is reachable.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crossbeam: Debug without a `T: Debug` bound.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded MPMC channel. Cloneable: clones
    /// compete for messages (each message is delivered to exactly one).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, waking one waiting receiver.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(msg);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake every blocked receiver so it can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Pops a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match queue.pop_front() {
                Some(msg) => Ok(msg),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn messages_fan_out_to_competing_receivers() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            let a = std::thread::spawn(move || (0..50).filter(|_| rx.recv().is_ok()).count());
            let b = std::thread::spawn(move || (0..50).filter(|_| rx2.recv().is_ok()).count());
            assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            let (tx2, rx2) = unbounded::<u32>();
            assert_eq!(rx2.try_recv(), Err(TryRecvError::Empty));
            drop(rx2);
            assert_eq!(tx2.send(7), Err(SendError(7)));
        }
    }
}
