//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so they
//! are ready for real serialization, but the build environment cannot reach
//! crates.io. This crate provides the two trait names plus no-op derive macros
//! so `use serde::{Deserialize, Serialize};` and
//! `#[derive(Serialize, Deserialize)]` compile unchanged. Nothing in the
//! workspace uses the traits as bounds, so the empty expansions are
//! sufficient. See the root README for the swap-to-real-serde policy.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (never used as a bound here).
pub trait SerializeTrait {}

/// Marker stand-in for `serde::Deserialize` (never used as a bound here).
pub trait DeserializeTrait {}
