//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so this crate implements the
//! small slice of the criterion 0.5 API the workspace benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`measurement_time`/`warm_up_time`/`throughput`, and
//! `Bencher::iter` — backed by a plain wall-clock harness. It reports the mean
//! iteration time and element throughput per benchmark. Statistical analysis,
//! plots and command-line filtering are intentionally out of scope; swap in
//! the real criterion by deleting `vendor/criterion` once the registry is
//! reachable.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (per-iteration totals).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("workers", 4)` renders as `workers/4`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure given to [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Time `f`, collecting up to `sample_size` samples within the group's
    /// measurement budget after a warm-up period.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            std::hint::black_box(f());
        }
        let measure_deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
            if Instant::now() >= measure_deadline {
                break;
            }
        }
        if self.samples.is_empty() {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up period per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Annotate per-iteration throughput for the group's reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark and print its mean iteration time (and throughput).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher);
        let n = bencher.samples.len().max(1) as u32;
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / n;
        let mut line = format!("{}/{:<28} {:>12.3?}/iter", self.name, id.id, mean);
        if let Some(t) = self.throughput {
            let secs = mean.as_secs_f64().max(f64::MIN_POSITIVE);
            match t {
                Throughput::Elements(e) => {
                    let _ = write!(line, "  {:>12.0} elem/s", e as f64 / secs);
                }
                Throughput::Bytes(b) => {
                    let _ = write!(line, "  {:>12.0} B/s", b as f64 / secs);
                }
            }
        }
        println!("{line}");
        self
    }

    /// End the group (prints nothing extra; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; this stub has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a benchmark group with default settings (10 samples, 3 s budget).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            throughput: None,
        }
    }

    /// Single-function benchmark without a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Re-export so `criterion::black_box` works like upstream.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a function that runs a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from one or more `criterion_group!` functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
